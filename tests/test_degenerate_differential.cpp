// Pinned differential suite: the degenerate-config guarantee of the
// k-choice / capacitated / reusable-resource generalization.
//
// Every strategy variant in the registry is run over three pinned two-choice
// traces (built by a test-local SplitMix64 so they are independent of the
// library's PRNG and of workload-generator changes), and the full observable
// outcome — final metrics, the online matching slot-for-slot, and the
// per-round prefix-optimum series — is folded into one FNV-1a digest per
// (trace, strategy) cell. The expected digests below were captured from the
// seed implementation (two fixed alternatives, b = 1, occupancy = 1) BEFORE
// the representation refactor; the suite therefore pins the guarantee that
// k=2 / b=1 / occupancy=1 runs stay bit-identical through it.
//
// Regenerating (only legitimate when the seed behaviour itself is the thing
// being changed, which this suite exists to forbid silently):
//   REQSCHED_REGEN_DIFF_BASELINES=1 ./test_degenerate_differential
// prints the replacement table and fails, so a stale table can never pass.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/prefix.hpp"
#include "analysis/registry.hpp"
#include "core/trace.hpp"
#include "core/workload.hpp"
#include "engine/simulator.hpp"

namespace reqsched {
namespace {

// ---- test-local deterministic stream (never the library PRNG) ----

struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
};

// ---- pinned fixtures ----

/// Mixed-window uniform contention: n=6, d=4, 64 injection rounds.
Trace fixture_uniform() {
  ProblemConfig config;
  config.n = 6;
  config.d = 4;
  Trace trace(config);
  SplitMix64 rng{0x5eedF00d0001ULL};
  for (Round t = 0; t < 64; ++t) {
    const std::uint64_t count = rng.below(9);  // 0..8 arrivals, E ~ 4/3 n
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto a = static_cast<ResourceId>(rng.below(6));
      auto b = static_cast<ResourceId>(rng.below(5));
      if (b >= a) ++b;
      const auto window = static_cast<std::int32_t>(1 + rng.below(4));
      trace.add(t, RequestSpec{a, b, window});
    }
  }
  return trace;
}

/// Bursty hot-pair traffic: n=8, d=6, 96 injection rounds, a 10-request
/// burst on one replica pair every seventh round over a light trickle.
Trace fixture_bursty() {
  ProblemConfig config;
  config.n = 8;
  config.d = 6;
  Trace trace(config);
  SplitMix64 rng{0x5eedF00d0002ULL};
  for (Round t = 0; t < 96; ++t) {
    const std::uint64_t trickle = rng.below(4);  // 0..3 background arrivals
    for (std::uint64_t i = 0; i < trickle; ++i) {
      const auto a = static_cast<ResourceId>(rng.below(8));
      auto b = static_cast<ResourceId>(rng.below(7));
      if (b >= a) ++b;
      trace.add(t, RequestSpec{a, b, 0});
    }
    if (t % 7 == 3) {
      const auto hot = static_cast<ResourceId>(rng.below(8));
      auto mirror = static_cast<ResourceId>(rng.below(7));
      if (mirror >= hot) ++mirror;
      for (int i = 0; i < 10; ++i) {
        trace.add(t, RequestSpec{hot, mirror,
                                 static_cast<std::int32_t>(2 + rng.below(5))});
      }
    }
  }
  return trace;
}

/// Sustained overload with tight windows: n=5, d=5, 80 injection rounds.
Trace fixture_overload() {
  ProblemConfig config;
  config.n = 5;
  config.d = 5;
  Trace trace(config);
  SplitMix64 rng{0x5eedF00d0003ULL};
  for (Round t = 0; t < 80; ++t) {
    const std::uint64_t count = 5 + rng.below(4);  // 5..8 arrivals, > n
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto a = static_cast<ResourceId>(rng.below(5));
      auto b = static_cast<ResourceId>(rng.below(4));
      if (b >= a) ++b;
      const auto window = static_cast<std::int32_t>(1 + rng.below(5));
      trace.add(t, RequestSpec{a, b, window});
    }
  }
  return trace;
}

/// EDF_single requires single-alternative requests: the projection keeps
/// every arrival and window but drops the second alternative.
Trace single_alt_projection(const Trace& trace) {
  Trace projected(trace.config());
  for (const Request& r : trace.requests()) {
    projected.add(r.arrival,
                  RequestSpec{r.first(), kNoResource,
                              static_cast<std::int32_t>(r.deadline -
                                                        r.arrival + 1)});
  }
  return projected;
}

struct Fixture {
  const char* name;
  Trace trace;
  Trace single_alt;
};

std::vector<Fixture>& fixtures() {
  static std::vector<Fixture> all = [] {
    std::vector<Fixture> f;
    for (auto&& [name, trace] :
         {std::pair{"uniform", fixture_uniform()},
          std::pair{"bursty", fixture_bursty()},
          std::pair{"overload", fixture_overload()}}) {
      Trace single = single_alt_projection(trace);
      f.push_back({name, std::move(trace), std::move(single)});
    }
    return f;
  }();
  return all;
}

const Trace& trace_for(const Fixture& fixture, const std::string& strategy) {
  return strategy == "EDF_single" ? fixture.single_alt : fixture.trace;
}

/// One full observable run outcome, folded to a digest: metrics, the online
/// matching in execution order, and the per-round prefix-OPT series.
std::uint64_t run_digest(const Trace& trace, const std::string& strategy_name) {
  TraceWorkload workload(trace);
  auto inner = make_strategy(strategy_name, /*seed=*/5);
  PrefixOptimumProbe probe(std::move(inner));
  Simulator sim(workload, probe);
  const Metrics& m = sim.run();

  Fnv fnv;
  fnv.mix(static_cast<std::uint64_t>(m.rounds));
  fnv.mix(static_cast<std::uint64_t>(m.injected));
  fnv.mix(static_cast<std::uint64_t>(m.fulfilled));
  fnv.mix(static_cast<std::uint64_t>(m.expired));
  fnv.mix(static_cast<std::uint64_t>(m.wasted_executions));
  fnv.mix(static_cast<std::uint64_t>(m.assignments));
  fnv.mix(static_cast<std::uint64_t>(m.unassignments));
  fnv.mix(static_cast<std::uint64_t>(m.reassignments));
  fnv.mix(static_cast<std::uint64_t>(m.communication_rounds));
  fnv.mix(static_cast<std::uint64_t>(m.messages));
  for (const auto& [id, slot] : sim.online_matching()) {
    fnv.mix(static_cast<std::uint64_t>(id));
    fnv.mix(static_cast<std::uint64_t>(slot.resource));
    fnv.mix(static_cast<std::uint64_t>(slot.round));
  }
  for (const RoundSample& s : probe.samples()) {
    fnv.mix(static_cast<std::uint64_t>(s.round));
    fnv.mix(static_cast<std::uint64_t>(s.prefix_opt));
    fnv.mix(static_cast<std::uint64_t>(s.prefix_fulfilled));
    fnv.mix(static_cast<std::uint64_t>(s.booked));
    fnv.mix(static_cast<std::uint64_t>(s.pending));
  }
  return fnv.h;
}

struct Baseline {
  const char* fixture;
  const char* strategy;
  std::uint64_t digest;
};

// Captured from the seed (pre-generalization) implementation; see the file
// comment for the regeneration protocol.
const std::vector<Baseline> kBaselines = {
    // REGEN-BEGIN
    {"uniform", "A_fix", 0xcb7a18e29f21e621ULL},
    {"uniform", "A_current", 0xb6f81638fe46e79ULL},
    {"uniform", "A_fix_balance", 0xdd3c2ee2c8ab8e2bULL},
    {"uniform", "A_eager", 0x650b65ec5b9da10cULL},
    {"uniform", "A_balance", 0x5c06369268e2b4b1ULL},
    {"uniform", "A_local_fix", 0xa8e92f27beb39402ULL},
    {"uniform", "A_local_eager", 0xff8fe4730e569a8fULL},
    {"uniform", "EDF_two_choice", 0x5e94c631e000eb31ULL},
    {"uniform", "EDF_two_choice_cancel", 0xf28756518e017d56ULL},
    {"uniform", "EDF_single", 0x4ffd43ecfba6ce7ULL},
    {"uniform", "A_local_eager_merged", 0x5b64c465b1f132c0ULL},
    {"uniform", "A_current_randomized", 0xb98ac5671cfeb9b9ULL},
    {"uniform", "A_fix_randomized", 0x19e87d33c62b1d1ULL},
    {"bursty", "A_fix", 0xa6062dc35ce31c75ULL},
    {"bursty", "A_current", 0x5015cac4a707f6d9ULL},
    {"bursty", "A_fix_balance", 0x95945585a5251b1aULL},
    {"bursty", "A_eager", 0x2127aaa33ea50753ULL},
    {"bursty", "A_balance", 0xf6e690e6aee89577ULL},
    {"bursty", "A_local_fix", 0xe3ccd9d4241898c6ULL},
    {"bursty", "A_local_eager", 0xbd456e44df73b8b0ULL},
    {"bursty", "EDF_two_choice", 0xcc83a8da44d8d631ULL},
    {"bursty", "EDF_two_choice_cancel", 0xc8e3ae4a9042a59fULL},
    {"bursty", "EDF_single", 0x2334c90567760974ULL},
    {"bursty", "A_local_eager_merged", 0x5d5b27c88a703974ULL},
    {"bursty", "A_current_randomized", 0x86dab61a27dcd541ULL},
    {"bursty", "A_fix_randomized", 0x55f5bcae9195ac0fULL},
    {"overload", "A_fix", 0xce857cb747bb43e1ULL},
    {"overload", "A_current", 0xfc6a05859b4c2675ULL},
    {"overload", "A_fix_balance", 0xe4bf46a6daffc9b9ULL},
    {"overload", "A_eager", 0x78ace4edeafba347ULL},
    {"overload", "A_balance", 0xb2049bfa10f5eb5dULL},
    {"overload", "A_local_fix", 0x4a8a637d1050221ULL},
    {"overload", "A_local_eager", 0x7968a318b20b1e5eULL},
    {"overload", "EDF_two_choice", 0x7641af69e5b0255dULL},
    {"overload", "EDF_two_choice_cancel", 0xaec1e56671d0afe7ULL},
    {"overload", "EDF_single", 0xc2a1a77d08e43181ULL},
    {"overload", "A_local_eager_merged", 0xae3f5e6d16e2b7c4ULL},
    {"overload", "A_current_randomized", 0xa7391317d544ff2eULL},
    {"overload", "A_fix_randomized", 0xb470e18fad620e76ULL},
    // REGEN-END
};

TEST(DegenerateDifferential, SeedBaselinesAreBitIdentical) {
  if (std::getenv("REQSCHED_REGEN_DIFF_BASELINES") != nullptr) {
    for (const auto& fixture : fixtures()) {
      for (const std::string& name : all_strategy_names()) {
        std::cout << "    {\"" << fixture.name << "\", \"" << name << "\", 0x"
                  << std::hex << run_digest(trace_for(fixture, name), name)
                  << std::dec << "ULL},\n";
      }
    }
    FAIL() << "baseline regeneration mode: paste the table above between the "
              "REGEN markers";
  }
  ASSERT_NE(kBaselines.size(), 0u)
      << "the pinned baseline table is empty — the degenerate-config "
         "guarantee is not being checked";
  for (const Baseline& expected : kBaselines) {
    const Fixture* fixture = nullptr;
    for (const auto& candidate : fixtures()) {
      if (expected.fixture == std::string(candidate.name)) {
        fixture = &candidate;
      }
    }
    ASSERT_NE(fixture, nullptr) << "unknown fixture " << expected.fixture;
    EXPECT_EQ(run_digest(trace_for(*fixture, expected.strategy),
                         expected.strategy),
              expected.digest)
        << "k=2/b=1/occupancy=1 behaviour of " << expected.strategy
        << " diverged from the frozen seed run on the " << expected.fixture
        << " fixture";
  }
}

/// The table must cover the whole registry on every fixture — a variant
/// added without a frozen baseline would silently escape the guarantee.
TEST(DegenerateDifferential, TableCoversEveryRegisteredStrategy) {
  if (std::getenv("REQSCHED_REGEN_DIFF_BASELINES") != nullptr) {
    GTEST_SKIP() << "regeneration mode";
  }
  for (const auto& fixture : fixtures()) {
    for (const std::string& name : all_strategy_names()) {
      bool found = false;
      for (const Baseline& b : kBaselines) {
        found |= name == b.strategy && fixture.name == std::string(b.fixture);
      }
      EXPECT_TRUE(found) << "no frozen baseline for " << name << " on "
                         << fixture.name;
    }
  }
}

}  // namespace
}  // namespace reqsched
