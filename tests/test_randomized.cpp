// Randomized tie-breaking strategies: still legal members of their classes,
// and measurably harder to trap with oblivious constructions.
#include <gtest/gtest.h>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/harness.hpp"
#include "strategies/randomized.hpp"
#include "strategies/scripted.hpp"

namespace reqsched {
namespace {

/// Replays a randomized strategy's outcomes through the class checker:
/// every round's final booking map must be one the class permits.
template <typename S>
void expect_class_conformance(StrategyKind kind, std::uint64_t seed) {
  class Recorder final : public IStrategy {
   public:
    explicit Recorder(std::uint64_t seed) : inner_(seed) {}
    std::string name() const override { return "recorder"; }
    void reset(const ProblemConfig& config) override { inner_.reset(config); }
    void on_round(Simulator& sim) override {
      // check_proposal computes its reference optima from the pre-round
      // state, so validate the outcome by re-running: capture first.
      inner_.on_round(sim);
      Proposal outcome;
      for (const RequestId id : sim.alive()) {
        const SlotRef slot = sim.slot_of(id);
        if (slot.valid()) outcome.emplace_back(id, slot);
      }
      outcomes.push_back(std::move(outcome));
    }
    S inner_;
    std::vector<Proposal> outcomes;
  };

  UniformWorkload workload({.n = 4, .d = 3, .load = 1.4, .horizon = 25,
                            .seed = seed, .two_choice = true});
  Recorder recorder(seed);
  {
    Simulator sim(workload, recorder);
    sim.run();
  }

  class Replay final : public IProposalSource {
   public:
    explicit Replay(std::vector<Proposal>& o) : outcomes_(o) {}
    std::optional<Proposal> propose(const Simulator&) override {
      REQSCHED_CHECK(i_ < outcomes_.size());
      return outcomes_[i_++];
    }
    std::vector<Proposal>& outcomes_;
    std::size_t i_ = 0;
  } replay(recorder.outcomes);

  ScriptedStrategy scripted(kind, replay);
  Simulator sim(workload, scripted);
  sim.run();
  EXPECT_EQ(scripted.violations(), 0)
      << (scripted.violation_log().empty() ? std::string("-")
                                           : scripted.violation_log()[0]);
}

TEST(RandomizedCurrent, StaysInsideTheCurrentClass) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    expect_class_conformance<RandomizedCurrent>(StrategyKind::kCurrent, seed);
  }
}

TEST(RandomizedFix, StaysInsideTheFixClass) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    expect_class_conformance<RandomizedFix>(StrategyKind::kFix, seed);
  }
}

TEST(RandomizedCurrent, BeatsTheObliviousConstructionOnAverage) {
  // The Theorem 2.2 instance assumes serve-oldest-first; random order
  // serves group mixtures and loses far less.
  auto det_inst_a = make_lb_current(4, 3);
  auto det_inst_b = make_lb_current(4, 6);
  auto det_a = make_reference_strategy(StrategyKind::kCurrent);
  auto det_b = make_reference_strategy(StrategyKind::kCurrent);
  const double deterministic = pairwise_slope_ratio(
      run_experiment(*det_inst_a.workload, *det_a),
      run_experiment(*det_inst_b.workload, *det_b));

  double random_sum = 0;
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5};
  for (const auto seed : seeds) {
    auto ia = make_lb_current(4, 3);
    auto ib = make_lb_current(4, 6);
    RandomizedCurrent ra(seed);
    RandomizedCurrent rb(seed + 77);
    random_sum += pairwise_slope_ratio(run_experiment(*ia.workload, ra),
                                       run_experiment(*ib.workload, rb));
  }
  const double randomized = random_sum / static_cast<double>(seeds.size());
  EXPECT_LT(randomized, deterministic - 0.05);
}

TEST(RandomizedStrategies, AreDeterministicGivenSeed) {
  UniformWorkload w1({.n = 5, .d = 3, .load = 1.5, .horizon = 30, .seed = 2,
                      .two_choice = true});
  UniformWorkload w2({.n = 5, .d = 3, .load = 1.5, .horizon = 30, .seed = 2,
                      .two_choice = true});
  RandomizedFix a(9);
  RandomizedFix b(9);
  const RunResult ra = run_experiment(w1, a);
  const RunResult rb = run_experiment(w2, b);
  EXPECT_EQ(ra.metrics.fulfilled, rb.metrics.fulfilled);
}

}  // namespace
}  // namespace reqsched
