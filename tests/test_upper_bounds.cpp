// Section 3 upper bounds as properties: no instance in the suite —
// adversarial or randomized — may drive a strategy above its proven bound.
#include <gtest/gtest.h>

#include <functional>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "adversary/universal.hpp"
#include "analysis/bounds.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"

namespace reqsched {
namespace {

Fraction upper_bound_of(const std::string& strategy, std::int32_t d) {
  if (strategy == "A_fix") return ub_fix(d);
  if (strategy == "A_current") return ub_current(d);
  if (strategy == "A_fix_balance") return ub_fix_balance(d);
  if (strategy == "A_eager") return ub_eager(d);
  if (strategy == "A_balance") return ub_balance(d);
  if (strategy == "A_local_fix") return ub_local_fix();
  if (strategy == "A_local_eager") return ub_local_eager();
  if (strategy == "EDF_two_choice") return ub_edf_two_choice();
  if (strategy == "EDF_two_choice_cancel") return ub_edf_two_choice();
  REQSCHED_REQUIRE_MSG(false, "no bound for " << strategy);
  return Fraction(0);
}

struct SuiteCase {
  std::string strategy;
  std::int32_t n;
  std::int32_t d;
  std::uint64_t seed;
};

class UpperBoundSuite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(UpperBoundSuite, RandomizedWorkloadsStayUnderTheBound) {
  const SuiteCase& c = GetParam();
  const Fraction bound = upper_bound_of(c.strategy, c.d);

  std::vector<std::unique_ptr<IWorkload>> workloads;
  const RandomWorkloadOptions base{.n = c.n, .d = c.d, .load = 1.6,
                                   .horizon = 48, .seed = c.seed,
                                   .two_choice = true};
  workloads.push_back(std::make_unique<UniformWorkload>(base));
  workloads.push_back(std::make_unique<ZipfWorkload>(base, 1.1));
  workloads.push_back(std::make_unique<BurstyWorkload>(base, 0.3, 2 * c.n));
  workloads.push_back(
      std::make_unique<BlockStormWorkload>(base, 0.4, std::min(c.n, 4)));

  for (auto& workload : workloads) {
    auto strategy = make_strategy(c.strategy);
    const RunResult result = run_experiment(*workload, *strategy);
    EXPECT_LE(result.ratio, bound.to_double() + 1e-12)
        << c.strategy << " on " << workload->name() << " exceeded "
        << bound;
  }
}

std::vector<SuiteCase> suite_cases() {
  std::vector<SuiteCase> cases;
  const std::vector<std::string> strategies = {
      "A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance",
      "A_local_fix", "A_local_eager", "EDF_two_choice",
      "EDF_two_choice_cancel"};
  for (const auto& s : strategies) {
    for (const std::int32_t d : {2, 3, 5}) {
      for (const std::uint64_t seed : {11u, 23u}) {
        cases.push_back(SuiteCase{s, 5, d, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UpperBoundSuite,
                         ::testing::ValuesIn(suite_cases()),
                         [](const auto& param_info) {
                           const SuiteCase& c = param_info.param;
                           return c.strategy + "_d" + std::to_string(c.d) +
                                  "_s" + std::to_string(c.seed);
                         });

TEST(UpperBounds, AdversarialInstancesRespectTheBoundsToo) {
  // Every theorem instance, run against every global strategy's reference
  // implementation, stays below that strategy's own upper bound.
  const auto check = [](IWorkload& workload) {
    for (const std::string& name : global_strategy_names()) {
      const std::int32_t d = workload.config().d;
      auto strategy = make_strategy(name);
      const RunResult result = run_experiment(workload, *strategy);
      EXPECT_LE(result.ratio, upper_bound_of(name, d).to_double() + 1e-12)
          << name << " on " << workload.name();
    }
  };
  check(*make_lb_fix(4, 5).workload);
  check(*make_lb_fix_balance(4, 5).workload);
  check(*make_lb_eager(4, 5).workload);
  check(*make_lb_balance(2, 3, 4).workload);
  check(*make_lb_current(3, 4).workload);
  {
    UniversalAdversary adversary(6, 5);
    check(adversary);
  }
}

TEST(UpperBounds, FixFamilyLeavesNoOrderOnePaths) {
  // The Theorem 3.3 argument: a failed request adjacent to a free slot
  // would contradict maximality.
  for (const std::string& name :
       {std::string("A_fix"), std::string("A_fix_balance"),
        std::string("A_eager"), std::string("A_balance")}) {
    for (const std::uint64_t seed : {31u, 32u}) {
      BlockStormWorkload workload({.n = 6, .d = 4, .load = 1.0, .horizon = 40,
                                   .seed = seed, .two_choice = true},
                                  0.5, 4);
      auto strategy = make_strategy(name);
      const RunResult result = run_experiment(workload, *strategy);
      if (result.paths.augmenting_paths > 0) {
        EXPECT_GE(result.paths.min_order, 2) << name << " seed " << seed;
      }
    }
  }
}

TEST(UpperBounds, EagerAndBalanceLeaveNoOrderTwoPaths) {
  // The Theorem 3.5/3.6 argument: rescheduling strategies exclude
  // augmenting paths of order 1 AND 2.
  for (const std::string& name :
       {std::string("A_eager"), std::string("A_balance")}) {
    for (const std::uint64_t seed : {41u, 42u, 43u}) {
      BlockStormWorkload workload({.n = 6, .d = 4, .load = 1.0, .horizon = 40,
                                   .seed = seed, .two_choice = true},
                                  0.5, 4);
      auto strategy = make_strategy(name);
      const RunResult result = run_experiment(workload, *strategy);
      if (result.paths.augmenting_paths > 0) {
        EXPECT_GE(result.paths.min_order, 3) << name << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace reqsched
