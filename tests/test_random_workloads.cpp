// Tests for the randomized workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "adversary/random.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"

namespace reqsched {
namespace {

template <typename W>
Trace record(W& workload) {
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  sim.run();
  Trace copy(sim.trace().config());
  for (const Request& r : sim.trace().requests()) {
    RequestSpec spec;
    spec.alts = r.alts;
    spec.window = static_cast<std::int32_t>(r.deadline - r.arrival + 1);
    copy.add(r.arrival, spec);
  }
  return copy;
}

TEST(UniformWorkloadTest, DeterministicGivenSeed) {
  UniformWorkload a({.n = 4, .d = 3, .load = 1.0, .horizon = 30, .seed = 5,
                     .two_choice = true});
  UniformWorkload b({.n = 4, .d = 3, .load = 1.0, .horizon = 30, .seed = 5,
                     .two_choice = true});
  const Trace ta = record(a);
  const Trace tb = record(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (RequestId id = 0; id < ta.size(); ++id) {
    EXPECT_EQ(ta.request(id).alts, tb.request(id).alts);
    EXPECT_EQ(ta.request(id).arrival, tb.request(id).arrival);
  }
}

TEST(UniformWorkloadTest, LoadScalesInjectionVolume) {
  UniformWorkload light({.n = 8, .d = 3, .load = 0.5, .horizon = 100,
                         .seed = 7, .two_choice = true});
  UniformWorkload heavy({.n = 8, .d = 3, .load = 2.0, .horizon = 100,
                         .seed = 7, .two_choice = true});
  const Trace tl = record(light);
  const Trace th = record(heavy);
  EXPECT_GT(th.size(), 2 * tl.size());
  // Expectation: load * n * horizon requests (within generous slack).
  EXPECT_NEAR(static_cast<double>(th.size()), 2.0 * 8 * 100, 350);
}

TEST(UniformWorkloadTest, AlternativesAreDistinctAndInRange) {
  UniformWorkload workload({.n = 6, .d = 2, .load = 1.5, .horizon = 50,
                            .seed = 9, .two_choice = true});
  const Trace trace = record(workload);
  for (const Request& r : trace.requests()) {
    EXPECT_GE(r.first(), 0);
    EXPECT_LT(r.first(), 6);
    EXPECT_NE(r.first(), r.second());
    EXPECT_GE(r.second(), 0);
    EXPECT_LT(r.second(), 6);
  }
}

TEST(ZipfWorkloadTest, HotResourceDominates) {
  ZipfWorkload workload({.n = 8, .d = 3, .load = 1.5, .horizon = 200,
                         .seed = 11, .two_choice = true},
                        1.4);
  const Trace trace = record(workload);
  std::vector<std::int64_t> hits(8, 0);
  for (const Request& r : trace.requests()) {
    for (const ResourceId res : r.alts) {
      ++hits[static_cast<std::size_t>(res)];
    }
  }
  EXPECT_GT(hits[0], hits[7] * 2);
}

TEST(BurstyWorkloadTest, BurstsShareAlternatives) {
  BurstyWorkload workload({.n = 8, .d = 4, .load = 1.0, .horizon = 100,
                           .seed = 13, .two_choice = true},
                          0.5, 16);
  const Trace trace = record(workload);
  // With bursts of 16 identical requests, some (first, second) pair must
  // appear at least 16 times.
  std::map<std::pair<ResourceId, ResourceId>, std::int64_t> pairs;
  std::int64_t max_count = 0;
  for (const Request& r : trace.requests()) {
    max_count = std::max(max_count, ++pairs[{r.first(), r.second()}]);
  }
  EXPECT_GE(max_count, 16);
}

TEST(BlockStormWorkloadTest, InjectsWholeBlocks) {
  BlockStormWorkload workload({.n = 6, .d = 3, .load = 1.0, .horizon = 60,
                               .seed = 17, .two_choice = true},
                              0.5, 4);
  const Trace trace = record(workload);
  ASSERT_GT(trace.size(), 0);
  // Block sizes are a*d with 2 <= a <= 4: per-round injection counts are in
  // {0, 6, 9, 12}.
  std::map<Round, std::int64_t> per_round;
  for (const Request& r : trace.requests()) ++per_round[r.arrival];
  for (const auto& [round, count] : per_round) {
    EXPECT_TRUE(count == 6 || count == 9 || count == 12)
        << "round " << round << " has " << count;
  }
}

TEST(Workloads, ResetReplaysIdentically) {
  UniformWorkload workload({.n = 4, .d = 3, .load = 1.0, .horizon = 20,
                            .seed = 23, .two_choice = true});
  const Trace first = record(workload);
  const Trace second = record(workload);  // Simulator ctor resets
  EXPECT_EQ(first.size(), second.size());
}

}  // namespace
}  // namespace reqsched
