// Structural tests for the Theorem 2.6 adaptive adversary.
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "adversary/universal.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "offline/offline.hpp"

namespace reqsched {
namespace {

TEST(UniversalAdversary, RejectsBadParameters) {
  EXPECT_THROW(UniversalAdversary(2, 1), ContractViolation);
  EXPECT_THROW(UniversalAdversary(6, 0), ContractViolation);
  EXPECT_NO_THROW(UniversalAdversary(4, 1));  // 3 !| d allowed (12/11 regime)
}

TEST(UniversalAdversary, InjectsTheProofsRequestVolume) {
  // Per interval: 3 * 4*(d/3) colored requests + one block(6, d) = 6d; plus
  // the initial block(6, d).
  const std::int32_t d = 6;
  const std::int32_t intervals = 4;
  UniversalAdversary adversary(d, intervals);
  auto strategy = make_strategy("A_fix");
  Simulator sim(adversary, *strategy);
  sim.run();
  const std::int64_t expected =
      6 * d + intervals * (3 * 4 * (d / 3) + 6 * d);
  EXPECT_EQ(sim.metrics().injected, expected);
  EXPECT_EQ(adversary.walled_colors().size(),
            static_cast<std::size_t>(intervals));
  for (const std::int32_t color : adversary.walled_colors()) {
    EXPECT_GE(color, 0);
    EXPECT_LT(color, 3);
  }
}

TEST(UniversalAdversary, ColoredAlternativesAreSpreadEvenly) {
  const std::int32_t d = 6;
  UniversalAdversary adversary(d, 1);
  auto strategy = make_strategy("A_balance");
  Simulator sim(adversary, *strategy);
  sim.run();
  // The colored requests of interval 0 are ids [6d, 6d + 4d): count first
  // alternatives per resource — each duo resource gets d/3 per color.
  std::map<ResourceId, std::int64_t> first_counts;
  for (RequestId id = 6 * d; id < 6 * d + 4 * d; ++id) {
    ++first_counts[sim.request(id).first()];
  }
  ASSERT_EQ(first_counts.size(), 4u);  // exactly the duo's four resources
  for (const auto& [resource, count] : first_counts) {
    EXPECT_EQ(count, d) << "resource " << resource;  // 3 colors x d/3
  }
}

TEST(UniversalAdversary, OfflineCanServeEverything) {
  // The construction is lossless for the clairvoyant scheduler — OPT
  // equals the injected count (that is what makes the ratio argument bite).
  for (const std::int32_t d : {3, 6, 9}) {
    UniversalAdversary adversary(d, 3);
    auto strategy = make_strategy("A_balance");
    Simulator sim(adversary, *strategy);
    sim.run();
    EXPECT_EQ(offline_optimum(sim.trace()), sim.metrics().injected)
        << "d=" << d;
  }
}

TEST(UniversalAdversary, WallsAnActuallyNeglectedColor) {
  // After interval 0, the walled color must have at least as many
  // unfulfilled requests as any other color (that is its definition);
  // reconstruct the counts from the trace and check.
  const std::int32_t d = 6;
  UniversalAdversary adversary(d, 1);
  auto strategy = make_strategy("A_fix");
  Simulator sim(adversary, *strategy);
  sim.run();
  ASSERT_EQ(adversary.walled_colors().size(), 1u);
  const std::int32_t walled = adversary.walled_colors()[0];

  // Colored ids of interval 0: [6d, 6d+4d), color = (id - 6d) / (4d/3).
  // A fulfilled colored request was fulfilled before the wall landed at
  // round d... we only need relative unfulfilled counts at the end — the
  // walled color's stragglers expired, others may have been served later;
  // compare expiry counts instead: the walled color must have the maximum
  // number of EXPIRED requests.
  std::array<std::int64_t, 3> expired{};
  const std::int32_t per_color = 4 * d / 3;
  for (std::int32_t c = 0; c < 3; ++c) {
    for (std::int32_t j = 0; j < per_color; ++j) {
      const RequestId id = 6 * d + c * per_color + j;
      if (sim.status(id) == RequestStatus::kExpired) {
        ++expired[static_cast<std::size_t>(c)];
      }
    }
  }
  for (std::int32_t c = 0; c < 3; ++c) {
    EXPECT_GE(expired[static_cast<std::size_t>(walled)],
              expired[static_cast<std::size_t>(c)])
        << "walled " << walled << " vs color " << c;
  }
}

}  // namespace
}  // namespace reqsched
