// Concurrency stress suite — the runtime half of the lock discipline that
// clang's -Wthread-safety checks statically. Run under the TSan preset
// (tools/check.sh --tsan) these tests hammer every sanctioned cross-thread
// path: ShardedRunner's JSONL fan-in (snapshots + stats frames + checkpoint
// callbacks from many shards at once), JsonlSink's lock-free O_APPEND
// append from raw threads, Mutex-serialized StreamStats merges into one
// accumulator, and the ThreadPool lifecycle edges (destructor drain,
// contended submit, exception-to-result-slot propagation). A discipline
// that only exists in annotations is a comment; TSan on these
// interleavings is what keeps the annotations the real one.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adversary/random.hpp"
#include "analysis/registry.hpp"
#include "engine/sharded.hpp"
#include "engine/stats.hpp"
#include "engine/stream_stats.hpp"
#include "util/assert.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace reqsched {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// JsonlSink: concurrent appends interleave whole records, never fragments.

TEST(ConcurrencyJsonlSink, InterleavedWritesStayWholeLines) {
  const std::string path = testing::TempDir() + "reqsched_jsonl_stress.jsonl";
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  {
    JsonlSink sink(path);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < kLines; ++i) {
          std::ostringstream os;
          os << "{\"writer\":" << t << ",\"seq\":" << i << "}";
          sink.write_line(os.str());
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kLines));
  std::vector<int> per_writer(kThreads, 0);
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    const auto pos = line.find("\"writer\":");
    ASSERT_NE(pos, std::string::npos) << line;
    ++per_writer[static_cast<std::size_t>(
        std::stoi(line.substr(pos + 9)))];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_writer[static_cast<std::size_t>(t)], kLines);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ShardedRunner fan-in: many shards racing into one crash-safe sink plus
// per-shard checkpoint callbacks, with the streaming-statistics merge after
// the join. The TSan pass is the teeth; the assertions pin the fan-in
// didn't lose or tear records.

TEST(ConcurrencyShardedRunner, ManyShardsOneJsonlSinkAndCheckpointFanIn) {
  const std::string path = testing::TempDir() + "reqsched_shard_stress.jsonl";
  constexpr std::int64_t kShards = 16;
  std::atomic<std::int64_t> checkpoints{0};

  ShardedRunOptions options;
  options.shards = kShards;
  options.threads = 4;
  options.jsonl_path = path;
  options.engine.snapshot_every = 8;
  options.engine.track_stream_stats = true;
  options.engine.frame_every = 16;
  options.engine.stream_stats.window = 32;
  options.engine.checkpoint_every = 32;
  options.manifest_line = [](std::int64_t shard) {
    std::ostringstream os;
    os << "{\"manifest\":1,\"shard\":" << shard << "}";
    return os.str();
  };
  // The runner fires this from whichever worker owns the shard; real
  // callers write shard-<k>.ckpt (distinct files — no lock needed). Here an
  // atomic counter keeps the cross-thread traffic while TSan watches.
  options.checkpoint_sink = [&](const StreamingEngine&, std::int64_t) {
    checkpoints.fetch_add(1, std::memory_order_relaxed);
  };

  const ShardedResult result = run_sharded(
      options,
      [](std::int64_t shard) {
        return std::make_unique<UniformWorkload>(RandomWorkloadOptions{
            .n = 4, .d = 3, .load = 1.5, .horizon = 128,
            .seed = 900 + static_cast<std::uint64_t>(shard),
            .two_choice = true});
      },
      [](std::int64_t) { return make_strategy("A_balance"); });

  ASSERT_TRUE(result.all_ok());
  EXPECT_GT(checkpoints.load(), 0);
  EXPECT_TRUE(result.merged_stats.active());
  EXPECT_EQ(result.merged_stats.shard(), -1);

  const std::vector<std::string> lines = read_lines(path);
  // Per shard: one manifest + at least one final snapshot; plus the merged
  // shard -1 frame.
  EXPECT_GE(lines.size(), static_cast<std::size_t>(2 * kShards + 1));
  std::int64_t manifests = 0;
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');  // whole records only — never a torn line
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"manifest\":1") != std::string::npos) ++manifests;
  }
  EXPECT_EQ(manifests, kShards);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// StreamStats: merge() is documented as externally-serialized; a Mutex
// around the shared accumulator is the sanctioned pattern. Staying inside
// the sketches' exact regime keeps the result order-independent, so the
// racing merge must equal the sequential one bit for bit.

TEST(ConcurrencyStreamStats, LockedConcurrentMergesMatchSequential) {
  constexpr int kShards = 8;
  const StreamStatsOptions opts{.window = 64, .buckets = 8,
                                .sketch_capacity = 4096};

  const auto build_shard = [&](int shard) {
    StreamStats stats;
    stats.reset(opts, shard);
    for (int round = 0; round < 100; ++round) {
      stats.on_inject(2);
      stats.on_fulfill(/*tardiness=*/(round + shard) % 5);
      if (round % 3 == 0) stats.on_expire();
      stats.end_round();
    }
    return stats;
  };

  StreamStats sequential;
  for (int s = 0; s < kShards; ++s) {
    const StreamStats shard = build_shard(s);
    if (!sequential.active()) {
      sequential = shard;
    } else {
      sequential.merge(shard);
    }
  }

  StreamStats shared;
  Mutex merge_mutex;
  {
    std::vector<std::thread> threads;
    threads.reserve(kShards);
    for (int s = 0; s < kShards; ++s) {
      threads.emplace_back([&, s] {
        const StreamStats shard = build_shard(s);  // off-lock: private build
        MutexLock lock(merge_mutex);
        if (!shared.active()) {
          shared = shard;
        } else {
          shared.merge(shard);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  sequential.set_shard(-1);
  shared.set_shard(-1);
  EXPECT_EQ(shared.frame(0), sequential.frame(0));
}

// ---------------------------------------------------------------------------
// ThreadPool lifecycle edges.

TEST(ConcurrencyThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle(): shutdown must still run every queued task before the
    // workers leave (drain-then-exit, not drop-on-floor).
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ConcurrencyThreadPool, ContendedSubmitFromManyThreads) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 250;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &ran] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kSubmitters * kPerSubmitter);
}

TEST(ConcurrencyThreadPool, WorkerIndexPartitionsPerWorkerState) {
  ThreadPool pool(4);
  // Off-pool callers are not workers.
  EXPECT_EQ(ThreadPool::current_worker_index(), ThreadPool::kNotAWorker);
  // On-pool, every index is in range and stable enough to key per-worker
  // arenas: hammer the lookup from every task.
  std::atomic<int> bad{0};
  parallel_for(pool, 500, [&](std::size_t) {
    const std::size_t worker = ThreadPool::current_worker_index();
    if (worker >= pool.thread_count()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ConcurrencyThreadPool, SubmitRejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), ContractViolation);
  pool.wait_idle();  // the rejected submit must not corrupt in-flight count
}

// Tasks themselves must not throw (that contract is the pool's); the
// sanctioned propagation path is a result slot per task, which is what both
// run_sharded (ShardResult::error) and run_sweep (SweepPoint::error)
// implement. Pin it end to end: a shard whose *strategy factory* throws
// reports through its slot while every other shard completes, under
// contention.
TEST(ConcurrencyThreadPool, TaskExceptionsPropagateThroughResultSlots) {
  ShardedRunOptions options;
  options.shards = 8;
  options.threads = 4;
  const ShardedResult result = run_sharded(
      options,
      [](std::int64_t shard) {
        return std::make_unique<UniformWorkload>(RandomWorkloadOptions{
            .n = 2, .d = 2, .load = 1.0, .horizon = 32,
            .seed = 7 + static_cast<std::uint64_t>(shard),
            .two_choice = true});
      },
      [](std::int64_t shard) -> std::unique_ptr<IStrategy> {
        if (shard % 3 == 1) {
          throw std::runtime_error("strategy factory exploded");
        }
        return make_strategy("A_balance");
      });
  EXPECT_FALSE(result.all_ok());
  std::int64_t failed = 0;
  for (const ShardResult& shard : result.shards) {
    if (shard.shard % 3 == 1) {
      ++failed;
      EXPECT_EQ(shard.error, "strategy factory exploded");
    } else {
      EXPECT_TRUE(shard.ok()) << shard.error;
      EXPECT_GT(shard.metrics.injected, 0);
    }
  }
  EXPECT_EQ(result.failed, failed);
}

}  // namespace
}  // namespace reqsched
