// The paper's lower-bound constructions, executed end to end:
//  * the scripted plans must conform to the strategy rules every round
//    (zero checker violations), and
//  * the measured per-phase competitive ratio must equal the theorem.
#include <gtest/gtest.h>

#include <functional>

#include "adversary/theorems.hpp"
#include "adversary/universal.hpp"
#include "analysis/bounds.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"
#include "local/local_fix.hpp"
#include "strategies/edf.hpp"
#include "strategies/scripted.hpp"

namespace reqsched {
namespace {

/// Runs a theorem instance twice (short and long) under the scripted
/// strategy and returns the additive-constant-free slope ratio.
struct TheoremOutcome {
  double slope_ratio;
  std::int64_t violations;
  RunResult long_run;
};

TheoremOutcome run_planned(
    const std::function<TheoremInstance(std::int32_t)>& make,
    std::int32_t short_phases, std::int32_t long_phases) {
  TheoremInstance short_inst = make(short_phases);
  TheoremInstance long_inst = make(long_phases);

  ScriptedStrategy short_strategy(short_inst.target, *short_inst.workload);
  ScriptedStrategy long_strategy(long_inst.target, *long_inst.workload);

  const RunResult short_run =
      run_experiment(*short_inst.workload, short_strategy);
  const RunResult long_run = run_experiment(*long_inst.workload, long_strategy);

  TheoremOutcome outcome{pairwise_slope_ratio(short_run, long_run),
                         short_run.violations + long_run.violations,
                         long_run};
  return outcome;
}

class LbFixTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(LbFixTest, AchievesTwoMinusOneOverD) {
  const std::int32_t d = GetParam();
  const auto outcome = run_planned(
      [d](std::int32_t phases) { return make_lb_fix(d, phases); }, 4, 8);
  EXPECT_EQ(outcome.violations, 0);
  EXPECT_NEAR(outcome.slope_ratio, lb_fix(d).to_double(), 1e-9)
      << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Deadlines, LbFixTest,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16));

class LbFixBalanceTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(LbFixBalanceTest, AchievesThreeDOverTwoDPlusTwo) {
  const std::int32_t d = GetParam();
  // No plan: the reference A_fix_balance walks into the trap by itself.
  TheoremInstance short_inst = make_lb_fix_balance(d, 4);
  TheoremInstance long_inst = make_lb_fix_balance(d, 8);
  auto strategy_a = make_strategy("A_fix_balance");
  auto strategy_b = make_strategy("A_fix_balance");
  const RunResult a = run_experiment(*short_inst.workload, *strategy_a);
  const RunResult b = run_experiment(*long_inst.workload, *strategy_b);
  EXPECT_NEAR(pairwise_slope_ratio(a, b),
              Fraction(3 * d, 2 * d + 2).to_double(), 1e-9)
      << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Deadlines, LbFixBalanceTest,
                         ::testing::Values(4, 6, 8, 10, 16));

class LbEagerTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(LbEagerTest, AchievesFourThirds) {
  const std::int32_t d = GetParam();
  const auto outcome = run_planned(
      [d](std::int32_t phases) {
        return make_lb_eager(d, phases, StrategyKind::kEager);
      },
      4, 8);
  EXPECT_EQ(outcome.violations, 0) << "d=" << d;
  EXPECT_NEAR(outcome.slope_ratio, 4.0 / 3.0, 1e-9) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Deadlines, LbEagerTest,
                         ::testing::Values(2, 4, 6, 8, 12));

TEST(LbEagerAtDTwo, AlsoHitsCurrentFixBalanceAndBalance) {
  for (const StrategyKind kind :
       {StrategyKind::kCurrent, StrategyKind::kFixBalance,
        StrategyKind::kBalance}) {
    const auto outcome = run_planned(
        [kind](std::int32_t phases) {
          return make_lb_eager(2, phases, kind);
        },
        4, 8);
    EXPECT_EQ(outcome.violations, 0) << to_string(kind);
    EXPECT_NEAR(outcome.slope_ratio, 4.0 / 3.0, 1e-9) << to_string(kind);
  }
}

class LbBalanceTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(LbBalanceTest, ApproachesFiveDPlusTwoOverFourDPlusOne) {
  const std::int32_t x = GetParam();
  const std::int32_t d = 3 * x - 1;
  const std::int32_t groups = 6;
  const auto outcome = run_planned(
      [&](std::int32_t intervals) {
        return make_lb_balance(x, groups, intervals);
      },
      4, 8);
  EXPECT_EQ(outcome.violations, 0) << "x=" << x;
  // Per interval and group the plan loses x of 5x-1 requests; the shared
  // S'/S'' maintenance (4x, all fulfilled) dilutes the ratio at finite
  // group counts exactly as in the paper's n -> infinity argument:
  //   slope = (groups*(5x-1) + 4x) / (groups*(4x-1) + 4x).
  const double expected =
      static_cast<double>(groups * (5 * x - 1) + 4 * x) /
      static_cast<double>(groups * (4 * x - 1) + 4 * x);
  EXPECT_NEAR(outcome.slope_ratio, expected, 1e-9) << "x=" << x;
  // And the infinite-group limit dominates the finite value.
  EXPECT_LT(outcome.slope_ratio, lb_balance(d).to_double());
}

INSTANTIATE_TEST_SUITE_P(Sizes, LbBalanceTest, ::testing::Values(1, 2, 3, 5));

TEST(LbCurrent, ApproachesEOverEMinusOne) {
  // The reference A_current serves oldest groups first; the measured ratio
  // must climb towards e/(e-1) ~ 1.5820 as ell grows.
  double previous = 1.0;
  for (const std::int32_t ell : {2, 3, 4, 5}) {
    TheoremInstance short_inst = make_lb_current(ell, 3);
    TheoremInstance long_inst = make_lb_current(ell, 6);
    auto a = make_strategy("A_current");
    auto b = make_strategy("A_current");
    const RunResult run_a = run_experiment(*short_inst.workload, *a);
    const RunResult run_b = run_experiment(*long_inst.workload, *b);
    const double slope = pairwise_slope_ratio(run_a, run_b);
    EXPECT_GT(slope, previous - 1e-12) << "ell=" << ell;
    EXPECT_LT(slope, lb_current_limit() + 0.05) << "ell=" << ell;
    previous = slope;
  }
  // By ell = 5 the ratio must already clear 1.4.
  EXPECT_GT(previous, 1.40);
}

TEST(LbUniversal, ForcesFortyFiveOverFortyOneOnEveryStrategy) {
  for (const std::string& name : global_strategy_names()) {
    UniversalAdversary short_adv(6, 4);
    UniversalAdversary long_adv(6, 8);
    auto a = make_strategy(name);
    auto b = make_strategy(name);
    const RunResult run_a = run_experiment(short_adv, *a);
    const RunResult run_b = run_experiment(long_adv, *b);
    const double slope = pairwise_slope_ratio(run_a, run_b);
    EXPECT_GE(slope, lb_universal().to_double() - 1e-9)
        << name << " beat the universal lower bound";
  }
}

TEST(LbLocalFix, RatioExactlyTwo) {
  for (const std::int32_t d : {1, 2, 4, 8}) {
    auto short_inst = make_lb_local_fix(d, 4);
    auto long_inst = make_lb_local_fix(d, 8);
    ALocalFix a;
    ALocalFix b;
    const RunResult run_a = run_experiment(*short_inst, a);
    const RunResult run_b = run_experiment(*long_inst, b);
    EXPECT_NEAR(pairwise_slope_ratio(run_a, run_b), 2.0, 1e-9) << "d=" << d;
  }
}

TEST(LbEdf, IndependentCopyEdfIsExactlyTwoCompetitive) {
  for (const std::int32_t d : {1, 2, 4, 8}) {
    auto short_inst = make_lb_edf(d, 4);
    auto long_inst = make_lb_edf(d, 8);
    EdfTwoChoice a(false);
    EdfTwoChoice b(false);
    const RunResult run_a = run_experiment(*short_inst, a);
    const RunResult run_b = run_experiment(*long_inst, b);
    EXPECT_NEAR(pairwise_slope_ratio(run_a, run_b), 2.0, 1e-9) << "d=" << d;
  }
}

}  // namespace
}  // namespace reqsched
