// Open-loop stationary workloads: rho is the contract. Every family —
// Poisson, MMPP, diurnal, flash crowd, drifting Zipf — must deliver a
// long-run mean of rho * n * b arrivals per round (the modulations are
// normalized away), generate deterministically from its seed, validate its
// knobs, and round-trip its full mutable state through the snapshot hooks
// so a checkpointed stream replays the exact remaining arrival sequence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "adversary/openloop.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"

namespace reqsched {
namespace {

/// Drains `rounds` rounds of arrivals from a fresh generator. The simulator
/// exists only to satisfy generate()'s observability parameter — open-loop
/// workloads are oblivious and never read it.
std::vector<RequestSpec> drain(OpenLoopWorkload& workload, Round rounds) {
  auto strategy = make_strategy("A_fix");
  Simulator probe(workload, *strategy);
  std::vector<RequestSpec> all;
  std::vector<RequestSpec> out;
  for (Round t = 0; t < rounds; ++t) {
    out.clear();
    workload.generate(t, probe, out);
    all.insert(all.end(), out.begin(), out.end());
  }
  return all;
}

double empirical_rate(OpenLoopWorkload& workload, Round rounds) {
  return static_cast<double>(drain(workload, rounds).size()) /
         static_cast<double>(rounds);
}

TEST(OpenLoop, PoissonCalibratesToRho) {
  for (const double rho : {0.5, 0.9, 1.2}) {
    OpenLoopOptions options{.n = 32, .d = 8, .rho = rho,
                            .horizon = 20'000, .seed = 5};
    OpenLoopWorkload workload(options, "poisson");
    EXPECT_NEAR(workload.mean_rate(), rho * 32.0, 1e-9);
    const double rate = empirical_rate(workload, options.horizon);
    EXPECT_NEAR(rate, rho * 32.0, 0.03 * rho * 32.0) << "rho=" << rho;
  }
}

TEST(OpenLoop, MmppNormalizesToRho) {
  OpenLoopOptions options{.n = 16, .d = 6, .rho = 0.9, .horizon = 60'000,
                          .seed = 3, .mmpp_high_mult = 4.0,
                          .mmpp_p_enter = 0.05, .mmpp_p_exit = 0.2};
  OpenLoopWorkload workload(options, "mmpp");
  EXPECT_NEAR(workload.mean_rate(), 0.9 * 16.0, 1e-9);
  const double rate = empirical_rate(workload, options.horizon);
  // Burstier than Poisson (the high/low phases add variance), so a looser
  // tolerance — but the normalization must hold the long-run mean.
  EXPECT_NEAR(rate, 0.9 * 16.0, 0.06 * 0.9 * 16.0);
}

TEST(OpenLoop, DiurnalAveragesOutOverFullPeriods) {
  OpenLoopOptions options{.n = 16, .d = 6, .rho = 0.8, .horizon = 8'192,
                          .seed = 7, .diurnal_amplitude = 1.0,
                          .diurnal_period = 1'024};
  OpenLoopWorkload workload(options, "diurnal");
  // horizon = 8 full periods: the sinusoid integrates to zero.
  const double rate = empirical_rate(workload, options.horizon);
  EXPECT_NEAR(rate, 0.8 * 16.0, 0.04 * 0.8 * 16.0);
}

TEST(OpenLoop, FlashCrowdKeepsMeanAndConcentratesAlternatives) {
  OpenLoopOptions options{.n = 32, .d = 8, .rho = 0.7, .horizon = 60'000,
                          .seed = 11, .flash_probability = 0.002,
                          .flash_mult = 8.0, .flash_duration = 32,
                          .flash_hot_set = 4};
  OpenLoopWorkload workload(options, "flashcrowd");
  EXPECT_NEAR(workload.mean_rate(), 0.7 * 32.0, 1e-9);
  const double rate = empirical_rate(workload, options.horizon);
  EXPECT_NEAR(rate, 0.7 * 32.0, 0.10 * 0.7 * 32.0);
}

TEST(OpenLoop, DriftingZipfRotatesTheHotSpot) {
  // Exponent 3.0 concentrates almost all mass on the hottest resource; the
  // drift shifts that resource by one every `zipf_drift_every` rounds, so
  // the per-window modal first alternative must rotate with it.
  OpenLoopOptions options{.n = 8, .d = 4, .rho = 4.0, .horizon = 4'096,
                          .seed = 19, .zipf_exponent = 3.0,
                          .zipf_drift_every = 1'024};
  OpenLoopWorkload workload(options, "driftzipf");
  auto strategy = make_strategy("A_fix");
  Simulator probe(workload, *strategy);
  std::vector<RequestSpec> out;
  std::vector<std::vector<std::int64_t>> histogram(
      4, std::vector<std::int64_t>(8, 0));
  for (Round t = 0; t < options.horizon; ++t) {
    out.clear();
    workload.generate(t, probe, out);
    auto& window_hist = histogram[static_cast<std::size_t>(t / 1'024)];
    for (const RequestSpec& spec : out) {
      window_hist[static_cast<std::size_t>(spec.alts[0])]++;
    }
  }
  std::vector<std::size_t> modes;
  for (const auto& window_hist : histogram) {
    modes.push_back(static_cast<std::size_t>(
        std::max_element(window_hist.begin(), window_hist.end()) -
        window_hist.begin()));
  }
  for (std::size_t w = 1; w < modes.size(); ++w) {
    EXPECT_EQ(modes[w], (modes[w - 1] + 1) % 8) << "window " << w;
  }
}

TEST(OpenLoop, GeneratesKDistinctAlternativesInRange) {
  OpenLoopOptions options{.n = 12, .d = 6, .rho = 1.0, .horizon = 2'000,
                          .seed = 29, .k = 4};
  OpenLoopWorkload workload(options, "poisson");
  const auto specs = drain(workload, options.horizon);
  ASSERT_FALSE(specs.empty());
  for (const RequestSpec& spec : specs) {
    ASSERT_EQ(spec.alts.size(), 4);
    for (std::int32_t i = 0; i < spec.alts.size(); ++i) {
      EXPECT_GE(spec.alts[i], 0);
      EXPECT_LT(spec.alts[i], 12);
      for (std::int32_t j = i + 1; j < spec.alts.size(); ++j) {
        EXPECT_NE(spec.alts[i], spec.alts[j]);
      }
    }
  }
}

TEST(OpenLoop, DeterministicPerSeedAndSensitiveToSeed) {
  const OpenLoopOptions options{.n = 16, .d = 6, .rho = 0.9,
                                .horizon = 2'000, .seed = 41,
                                .mmpp_high_mult = 4.0};
  OpenLoopWorkload a(options, "mmpp");
  OpenLoopWorkload b(options, "mmpp");
  const auto specs_a = drain(a, options.horizon);
  const auto specs_b = drain(b, options.horizon);
  ASSERT_EQ(specs_a.size(), specs_b.size());
  for (std::size_t i = 0; i < specs_a.size(); ++i) {
    EXPECT_EQ(specs_a[i].alts, specs_b[i].alts);
    EXPECT_EQ(specs_a[i].window, specs_b[i].window);
  }

  auto reseeded_options = options;
  reseeded_options.seed = 42;
  OpenLoopWorkload c(reseeded_options, "mmpp");
  EXPECT_NE(drain(c, options.horizon).size(), specs_a.size());
}

TEST(OpenLoop, ExhaustsAtHorizon) {
  OpenLoopOptions options{.n = 8, .d = 4, .rho = 1.0, .horizon = 100,
                          .seed = 1};
  OpenLoopWorkload workload(options, "poisson");
  EXPECT_FALSE(workload.exhausted(0));
  EXPECT_FALSE(workload.exhausted(99));
  EXPECT_TRUE(workload.exhausted(100));
  EXPECT_TRUE(workload.resumable());
}

TEST(OpenLoop, ExportImportResumesTheExactSequence) {
  // Cut every family mid-stream — including mid-flash-burst state and the
  // MMPP phase bit — and check the restored instance replays the identical
  // remaining arrivals.
  struct Case {
    const char* family;
    OpenLoopOptions options;
  };
  const Case cases[] = {
      {"poisson",
       {.n = 16, .d = 6, .rho = 0.9, .horizon = 2'000, .seed = 3}},
      {"mmpp",
       {.n = 16, .d = 6, .rho = 0.9, .horizon = 2'000, .seed = 3,
        .mmpp_high_mult = 4.0}},
      {"flashcrowd",
       {.n = 16, .d = 6, .rho = 0.9, .horizon = 2'000, .seed = 3,
        .flash_probability = 0.01, .flash_mult = 8.0, .flash_duration = 64,
        .flash_hot_set = 4}},
      {"driftzipf",
       {.n = 16, .d = 6, .rho = 0.9, .horizon = 2'000, .seed = 3,
        .zipf_exponent = 1.2, .zipf_drift_every = 256}},
  };
  for (const Case& c : cases) {
    OpenLoopWorkload original(c.options, c.family);
    auto strategy = make_strategy("A_fix");
    Simulator probe(original, *strategy);
    std::vector<RequestSpec> out;
    const Round cut = 777;
    for (Round t = 0; t < cut; ++t) {
      out.clear();
      original.generate(t, probe, out);
    }
    std::vector<std::uint64_t> state;
    original.export_state(state);

    OpenLoopWorkload resumed(c.options, c.family);
    auto resumed_strategy = make_strategy("A_fix");
    Simulator resumed_probe(resumed, *resumed_strategy);
    resumed.import_state(state);

    for (Round t = cut; t < c.options.horizon; ++t) {
      out.clear();
      original.generate(t, probe, out);
      std::vector<RequestSpec> resumed_out;
      resumed.generate(t, resumed_probe, resumed_out);
      ASSERT_EQ(out.size(), resumed_out.size())
          << c.family << " diverged at round " << t;
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].alts, resumed_out[i].alts) << c.family << " t=" << t;
        EXPECT_EQ(out[i].window, resumed_out[i].window);
        EXPECT_EQ(out[i].occupancy, resumed_out[i].occupancy);
      }
    }
  }
}

TEST(OpenLoop, NameEncodesFamilyAndKnobs) {
  OpenLoopOptions options{.n = 16, .d = 6, .rho = 0.9, .horizon = 100,
                          .seed = 3};
  OpenLoopWorkload workload(options, "poisson");
  EXPECT_NE(workload.name().find("poisson"), std::string::npos);
  EXPECT_EQ(workload.config().n, 16);
  EXPECT_EQ(workload.config().d, 6);
}

TEST(OpenLoop, RejectsInvalidOptions) {
  const auto make = [](const OpenLoopOptions& options) {
    OpenLoopWorkload workload(options, "poisson");
    (void)workload;
  };
  EXPECT_THROW(make({.n = 16, .d = 6, .rho = -0.1}), ContractViolation);
  EXPECT_THROW(make({.n = 16, .d = 6, .rho = 0.9, .horizon = 0}),
               ContractViolation);
  EXPECT_THROW(make({.n = 2, .d = 6, .rho = 0.9, .horizon = 10, .seed = 1,
                     .k = 4}),
               ContractViolation);
  EXPECT_THROW(make({.n = 16, .d = 6, .rho = 0.9, .horizon = 10, .seed = 1,
                     .k = 2, .b = 1, .min_window = 0, .max_occupancy = 9}),
               ContractViolation);
  EXPECT_THROW(make({.n = 16, .d = 6, .rho = 0.9, .horizon = 10, .seed = 1,
                     .k = 2, .b = 1, .min_window = 0, .max_occupancy = 1,
                     .mmpp_high_mult = 0.5}),
               ContractViolation);
  EXPECT_THROW(make({.n = 16, .d = 6, .rho = 0.9, .horizon = 10, .seed = 1,
                     .k = 2, .b = 1, .min_window = 0, .max_occupancy = 1,
                     .mmpp_high_mult = 1.0, .mmpp_p_enter = 0.05,
                     .mmpp_p_exit = 0.2, .diurnal_amplitude = 1.5}),
               ContractViolation);
}

}  // namespace
}  // namespace reqsched
