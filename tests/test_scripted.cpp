// Unit tests for the proposal checker and ScriptedStrategy plumbing.
#include <gtest/gtest.h>

#include "adversary/planned.hpp"
#include "engine/simulator.hpp"
#include "strategies/scripted.hpp"

namespace reqsched {
namespace {

/// A proposal source driven by a hand-written per-round table.
class TableSource final : public IProposalSource {
 public:
  explicit TableSource(std::vector<std::optional<Proposal>> rows)
      : rows_(std::move(rows)) {}
  std::optional<Proposal> propose(const Simulator& sim) override {
    const auto t = static_cast<std::size_t>(sim.now());
    return t < rows_.size() ? rows_[t] : std::nullopt;
  }

 private:
  std::vector<std::optional<Proposal>> rows_;
};

Trace two_requests_trace() {
  Trace trace(ProblemConfig{2, 2});
  trace.add(0, RequestSpec{0, 1, 0});  // r0
  trace.add(0, RequestSpec{0, 1, 0});  // r1
  return trace;
}

TEST(Checker, AcceptsAConformingFixProposal) {
  const Trace trace = two_requests_trace();
  TraceWorkload workload(trace);
  TableSource source({Proposal{{0, {0, 0}}, {1, {1, 0}}}});
  ScriptedStrategy strategy(StrategyKind::kFix, source);
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_EQ(strategy.violations(), 0);
  EXPECT_EQ(sim.metrics().fulfilled, 2);
}

TEST(Checker, RejectsUndercountingFixProposal) {
  const Trace trace = two_requests_trace();
  TraceWorkload workload(trace);
  // Only one of two schedulable new requests booked: violates rule 2 of
  // A_fix; the fallback then schedules properly.
  TableSource source({Proposal{{0, {0, 0}}}});
  ScriptedStrategy strategy(StrategyKind::kFix, source);
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_EQ(strategy.violations(), 1);
  ASSERT_EQ(strategy.violation_log().size(), 1u);
  EXPECT_NE(strategy.violation_log()[0].find("new requests"),
            std::string::npos);
  EXPECT_EQ(sim.metrics().fulfilled, 2);  // fallback saved the round
}

TEST(Checker, RejectsNonMaximalFixProposal) {
  Trace trace(ProblemConfig{2, 2});
  trace.add(0, RequestSpec{0, 1, 0});  // r0, new
  trace.add(1, RequestSpec{0, 1, 0});  // r1, next round
  TraceWorkload workload(trace);
  // Round 0 fine; round 1 books the new r1 but... r1 is the only new one;
  // propose r1 unbooked -> fails the new-request rule.
  TableSource source({Proposal{{0, {0, 0}}}, Proposal{{}}});
  ScriptedStrategy strategy(StrategyKind::kFix, source);
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_GE(strategy.violations(), 1);
}

TEST(Checker, RejectsInvalidBookings) {
  const Trace trace = two_requests_trace();
  TraceWorkload workload(trace);
  struct Case {
    Proposal proposal;
    const char* what;
  };
  const std::vector<Case> cases = {
      {{{0, {0, 0}}, {1, {0, 0}}}, "slot double-booked"},
      {{{0, {0, 0}}, {0, {1, 0}}}, "duplicate booking"},
      {{{0, {0, 5}}}, "outside window"},
      {{{5, {0, 0}}}, "unknown request"},
  };
  for (const auto& c : cases) {
    TraceWorkload fresh(trace);
    TableSource source({c.proposal});
    ScriptedStrategy strategy(StrategyKind::kFix, source);
    Simulator sim(fresh, strategy);
    sim.run();
    EXPECT_GE(strategy.violations(), 1) << c.what;
    EXPECT_NE(strategy.violation_log()[0].find(c.what), std::string::npos)
        << "got: " << strategy.violation_log()[0];
  }
}

TEST(Checker, FixFamilyRejectsDroppedBookings) {
  Trace trace(ProblemConfig{2, 3});
  trace.add(0, RequestSpec{0, 1, 0});
  trace.add(1, RequestSpec{0, 1, 0});
  TraceWorkload workload(trace);
  // Round 0: book r0 at a future slot. Round 1: drop it (A_fix forbids).
  TableSource source({Proposal{{0, {0, 2}}}, Proposal{{1, {0, 1}}}});
  ScriptedStrategy strategy(StrategyKind::kFix, source);
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_GE(strategy.violations(), 1);
  EXPECT_NE(strategy.violation_log()[0].find("must stay"), std::string::npos);
}

TEST(Checker, CurrentRejectsFutureBookings) {
  const Trace trace = two_requests_trace();
  TraceWorkload workload(trace);
  TableSource source({Proposal{{0, {0, 0}}, {1, {1, 1}}}});
  ScriptedStrategy strategy(StrategyKind::kCurrent, source);
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_GE(strategy.violations(), 1);
  EXPECT_NE(strategy.violation_log()[0].find("current round"),
            std::string::npos);
}

TEST(Checker, EagerAcceptsMovesAndRejectsDrops) {
  Trace trace(ProblemConfig{2, 3});
  trace.add(0, RequestSpec{0, 1, 0});  // r0
  trace.add(1, RequestSpec{0, 1, 0});  // r1
  {
    // Conforming: r0 booked now; r1 next round; r0 moved is fine as long
    // as it stays booked — here we keep everything tight and current.
    TraceWorkload workload(trace);
    TableSource source({Proposal{{0, {0, 0}}},
                        Proposal{{1, {0, 1}}}});  // r0 fulfilled already
    ScriptedStrategy strategy(StrategyKind::kEager, source);
    Simulator sim(workload, strategy);
    sim.run();
    EXPECT_EQ(strategy.violations(), 0)
        << (strategy.violation_log().empty()
                ? std::string("-")
                : strategy.violation_log()[0]);
    EXPECT_EQ(sim.metrics().fulfilled, 2);
  }
  {
    // Dropping a previously scheduled request violates the eager rule.
    Trace trace2(ProblemConfig{1, 3});
    trace2.add(0, RequestSpec{0, kNoResource, 0});  // r0
    trace2.add(1, RequestSpec{0, kNoResource, 0});  // r1
    TraceWorkload workload(trace2);
    // Round 0: book r0 at round 2 (not maximal X_0 -> also checked, so use
    // the only slot pattern that isolates the drop rule: book r0 now).
    // Round 1: propose r1 only — r0 is gone (fulfilled), so this is fine;
    // instead violate by booking r1 at round 2 (X_0 suboptimal).
    TableSource source({Proposal{{0, {0, 0}}}, Proposal{{1, {0, 2}}}});
    ScriptedStrategy strategy(StrategyKind::kEager, source);
    Simulator sim(workload, strategy);
    sim.run();
    EXPECT_GE(strategy.violations(), 1);
    EXPECT_NE(strategy.violation_log()[0].find("executions now"),
              std::string::npos)
        << strategy.violation_log()[0];
  }
}

TEST(Checker, BalanceRejectsLexSuboptimalProfiles) {
  Trace trace(ProblemConfig{1, 3});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  TraceWorkload workload(trace);
  // Booking the only request late when "now" is free: profile (0,1,0) loses
  // to (1,0,0).
  TableSource source({Proposal{{0, {0, 1}}}});
  ScriptedStrategy strategy(StrategyKind::kBalance, source);
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_GE(strategy.violations(), 1);
  EXPECT_NE(strategy.violation_log()[0].find("lexicographically"),
            std::string::npos);
}

TEST(PlannedInstance, ValidatesScriptAndMapsIds) {
  std::vector<PlannedRequest> script;
  PlannedRequest bad;
  bad.arrival = 0;
  bad.spec = RequestSpec{0, 1, 0};
  bad.intended = SlotRef{0, 9};  // outside the window
  script.push_back(bad);
  EXPECT_THROW(PlannedInstance("x", ProblemConfig{2, 2}, script),
               ContractViolation);

  script[0].intended = SlotRef{0, 1};
  PlannedInstance good("x", ProblemConfig{2, 2}, script);
  EXPECT_EQ(good.planned_online(), 1);
}

}  // namespace
}  // namespace reqsched
