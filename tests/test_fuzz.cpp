// Fuzz-style cross-checks:
//  * the proposal checker against exhaustive enumeration of all valid
//    booking maps on tiny instances — the accepted set must be exactly the
//    rule-conforming matchings, all sharing the class's objective signature;
//  * the schedule against a naive reference model under random operations;
//  * the message router against a naive admission model.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <tuple>

#include "adversary/random.hpp"
#include "engine/simulator.hpp"
#include "local/router.hpp"
#include "matching/bipartite.hpp"
#include "strategies/scripted.hpp"
#include "strategies/window_problem.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

// ------------------------------------------------------------ checker fuzz

/// Enumerates every valid complete booking map for the current round and
/// feeds each to the checker; verifies acceptance is non-empty and that all
/// accepted maps share the objective signature of the strategy class.
class EnumeratingProbe final : public IStrategy {
 public:
  explicit EnumeratingProbe(StrategyKind kind)
      : kind_(kind), fallback_(make_reference_strategy(kind)) {}

  std::string name() const override { return "enumerating_probe"; }
  void reset(const ProblemConfig& config) override { fallback_->reset(config); }
  bool wants_window_problem() const override {
    return fallback_->wants_window_problem();
  }

  void on_round(Simulator& sim) override {
    enumerate_and_check(sim);
    fallback_->on_round(sim);
  }

  std::int64_t rounds_checked = 0;

 private:
  void enumerate_and_check(Simulator& sim) {
    // Candidate (request, slot) options. Keep the search tiny.
    std::vector<RequestId> lefts(sim.alive().begin(), sim.alive().end());
    if (lefts.size() > 4) return;
    std::vector<SlotRef> slots;
    for (Round t = sim.now(); t < sim.schedule().window_end(); ++t) {
      for (ResourceId i = 0; i < sim.config().n; ++i) {
        slots.push_back(SlotRef{i, t});
      }
    }

    std::vector<Proposal> accepted;
    Proposal current;
    std::set<std::size_t> used;
    const std::function<void(std::size_t)> recurse = [&](std::size_t idx) {
      if (idx == lefts.size()) {
        if (check_proposal(kind_, sim, current).ok) accepted.push_back(current);
        return;
      }
      recurse(idx + 1);  // leave unbooked
      const Request& r = sim.request(lefts[idx]);
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (used.count(s) || !r.allows_slot(slots[s])) continue;
        used.insert(s);
        current.emplace_back(lefts[idx], slots[s]);
        recurse(idx + 1);
        current.pop_back();
        used.erase(s);
      }
    };
    recurse(0);

    if (lefts.empty()) return;
    ++rounds_checked;
    ASSERT_FALSE(accepted.empty())
        << to_string(kind_) << ": no conforming booking map at round "
        << sim.now();

    // All accepted maps must share the class's objective signature.
    const auto signature = [&](const Proposal& p) {
      std::map<Round, std::int64_t> per_round;
      for (const auto& [id, slot] : p) {
        (void)id;
        ++per_round[slot.round];
      }
      return std::tuple(p.size(), per_round);
    };
    const auto reference_sig = signature(accepted.front());
    for (const Proposal& p : accepted) {
      switch (kind_) {
        case StrategyKind::kCurrent:
        case StrategyKind::kEager:
          EXPECT_EQ(p.size(), accepted.front().size());
          break;
        case StrategyKind::kFix:
          // max-new + maximal: sizes can differ only via the maximal
          // extension — new-request counts must match; checked by the
          // checker itself, here we just require non-emptiness above.
          break;
        case StrategyKind::kFixBalance:
        case StrategyKind::kBalance:
          EXPECT_EQ(signature(p), reference_sig)
              << to_string(kind_) << " accepted two different profiles";
          break;
      }
    }
  }

  StrategyKind kind_;
  std::unique_ptr<IStrategy> fallback_;
};

class CheckerFuzz : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(CheckerFuzz, AcceptedSetIsConsistentOnTinyInstances) {
  const StrategyKind kind = GetParam();
  UniformWorkload workload({.n = 2, .d = 2, .load = 1.0, .horizon = 12,
                            .seed = 3, .two_choice = true});
  EnumeratingProbe probe(kind);
  Simulator sim(workload, probe);
  sim.run();
  EXPECT_GT(probe.rounds_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, CheckerFuzz,
                         ::testing::Values(StrategyKind::kFix,
                                           StrategyKind::kCurrent,
                                           StrategyKind::kFixBalance,
                                           StrategyKind::kEager,
                                           StrategyKind::kBalance),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// ----------------------------------------------------------- schedule fuzz

TEST(ScheduleFuzz, AgreesWithNaiveModel) {
  Prng rng(17);
  const ProblemConfig config{3, 4};
  Schedule schedule(config);
  std::map<RequestId, SlotRef> model;  // reference: request -> slot
  RequestId next_id = 0;

  const auto random_slot = [&](Round lo) {
    return SlotRef{static_cast<ResourceId>(rng.next_below(3)),
                   lo + static_cast<Round>(rng.next_below(4))};
  };

  for (int step = 0; step < 4000; ++step) {
    const Round base = schedule.window_begin();
    const auto action = rng.next_below(10);
    if (action < 5) {  // assign a fresh request
      Request r;
      r.id = next_id;
      r.arrival = base;
      r.deadline = base + 3;
      r.alts = AltList(0, 1);
      const SlotRef slot = random_slot(base);
      const bool valid = r.allows_slot(slot) && schedule.is_free(slot);
      if (valid) {
        schedule.assign(r, slot);
        model[next_id] = slot;
        ++next_id;
      } else {
        EXPECT_THROW(schedule.assign(r, slot), ContractViolation);
      }
    } else if (action < 8 && !model.empty()) {  // unassign a random booking
      auto it = model.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.next_below(model.size())));
      schedule.unassign(it->first);
      model.erase(it);
    } else {  // advance the window
      for (auto it = model.begin(); it != model.end();) {
        if (it->second.round == base) {
          schedule.unassign(it->first);  // simulate execution
          it = model.erase(it);
        } else {
          ++it;
        }
      }
      EXPECT_TRUE(schedule.advance().empty());
    }

    // Cross-check the full state.
    EXPECT_EQ(schedule.booked_count(),
              static_cast<std::int64_t>(model.size()));
    for (const auto& [id, slot] : model) {
      EXPECT_EQ(schedule.slot_of(id), slot);
      EXPECT_EQ(schedule.request_at(slot), id);
    }
  }
}

// ------------------------------------------------------------- router fuzz

TEST(RouterFuzz, AgreesWithNaiveAdmission) {
  Prng rng(23);
  const ProblemConfig config{4, 3};  // capacity 3 per resource
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Message> messages;
    const auto count = rng.next_below(20);
    for (std::uint64_t i = 0; i < count; ++i) {
      messages.push_back(Message{
          static_cast<RequestId>(i),
          static_cast<ResourceId>(rng.next_below(4)),
          static_cast<Round>(rng.next_below(6)),
          rng.next_bool(0.05), 0});
    }
    const Delivery delivery = route_messages(config, messages);

    // Conservation: every message is delivered or failed, exactly once.
    std::size_t delivered = 0;
    for (const auto& inbox : delivery.delivered) delivered += inbox.size();
    EXPECT_EQ(delivered + delivery.failed.size(), messages.size());

    // Capacity: at most 3 untagged messages per resource.
    for (const auto& inbox : delivery.delivered) {
      std::int64_t untagged = 0;
      for (const Message& m : inbox) {
        if (!m.priority_tag) ++untagged;
      }
      EXPECT_LE(untagged, 3);
    }

    // LDF: every failed message has deadline <= every untagged delivered
    // message at the same resource (ties allowed).
    for (const Message& failed : delivery.failed) {
      for (const Message& got :
           delivery.delivered[static_cast<std::size_t>(failed.to)]) {
        if (got.priority_tag) continue;
        EXPECT_LE(failed.deadline, got.deadline);
      }
    }
  }
}

}  // namespace
}  // namespace reqsched
