// Tests for the streaming engine: the RequestPool window index, the
// closure-pruned WindowedPrefixOpt, and the central differential guarantee
// — a bounded-memory streaming run produces bit-identical metrics and
// online matchings to the legacy (history-retaining) Simulator, because
// both are the same round loop over different storage.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/prefix.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "engine/sharded.hpp"
#include "offline/offline.hpp"
#include "strategies/scripted.hpp"

namespace reqsched {
namespace {

RequestSpec two_choice(ResourceId a, ResourceId b) {
  return RequestSpec{a, b, 0};
}

// ---------------------------------------------------------------------------
// RequestPool

TEST(RequestPool, WindowModeTombstonesThenRecycles) {
  RequestPool pool;
  pool.reset(ProblemConfig{2, 2}, /*retain_history=*/false);
  const RequestId a = pool.admit(0, two_choice(0, 1));
  const RequestId b = pool.admit(0, two_choice(0, 1));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(pool.live_count(), 2);
  EXPECT_EQ(pool.status(a), RequestStatus::kPending);

  pool.fulfill(a, SlotRef{0, 0});
  pool.expire(b);
  EXPECT_EQ(pool.live_count(), 0);
  // Retired-but-in-window ids answer status queries via tombstones (the
  // independent-copy EDF strategy queries its retired twin this way).
  EXPECT_EQ(pool.status(a), RequestStatus::kFulfilled);
  EXPECT_EQ(pool.status(b), RequestStatus::kExpired);

  // d = 2: arrivals at round 0 leave the window at round 2, not before.
  pool.advance(1);
  EXPECT_EQ(pool.window_base(), 0);
  pool.advance(2);
  EXPECT_EQ(pool.window_base(), 2);
  EXPECT_THROW(pool.status(a), ContractViolation);

  // The retired slab slots are recycled, not abandoned.
  const std::int64_t slab = pool.slab_capacity();
  const RequestId c = pool.admit(2, two_choice(1, 0));
  EXPECT_EQ(pool.slab_capacity(), slab);
  EXPECT_EQ(pool.request(c).id, c);
  EXPECT_EQ(pool.request(c).deadline, 3);
}

TEST(RequestPool, RetainModeKeepsEverything) {
  RequestPool pool;
  pool.reset(ProblemConfig{2, 3}, /*retain_history=*/true);
  const RequestId a = pool.admit(0, two_choice(0, 1));
  pool.fulfill(a, SlotRef{1, 2});
  pool.advance(100);  // no-op in retain mode
  EXPECT_EQ(pool.status(a), RequestStatus::kFulfilled);
  EXPECT_EQ(pool.fulfilled_slot(a), (SlotRef{1, 2}));
  EXPECT_EQ(pool.request(a).first(), 0);
}

TEST(RequestPool, RingGrowsToTheAdmissionBurst) {
  RequestPool pool;
  pool.reset(ProblemConfig{4, 3}, /*retain_history=*/false);
  // 200 admissions in one round: well past the initial ring size, so the
  // ring must re-home the live span while ids stay valid.
  std::vector<RequestId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(pool.admit(0, two_choice(static_cast<ResourceId>(i % 4),
                                           static_cast<ResourceId>((i + 1) % 4))));
  }
  for (const RequestId id : ids) {
    EXPECT_EQ(pool.request(id).id, id);
  }
  EXPECT_EQ(pool.max_admitted_per_round(), 200);
  EXPECT_EQ(pool.peak_live(), 200);
  for (const RequestId id : ids) pool.expire(id);
  EXPECT_EQ(pool.live_count(), 0);
}

TEST(RequestPool, RejectsMalformedAdmissions) {
  RequestPool pool;
  pool.reset(ProblemConfig{2, 2}, /*retain_history=*/false);
  pool.admit(5, two_choice(0, 1));
  EXPECT_THROW(pool.admit(4, two_choice(0, 1)), ContractViolation);  // backwards
  EXPECT_THROW(pool.admit(5, two_choice(0, 0)), ContractViolation);  // duplicate
  EXPECT_THROW(pool.admit(5, two_choice(0, 2)), ContractViolation);  // range
  EXPECT_THROW(pool.admit(5, RequestSpec{0, 1, 3}), ContractViolation);  // > d
}

// ---------------------------------------------------------------------------
// WindowedPrefixOpt vs the reference PrefixOptimumTracker

Trace realized_trace(IWorkload& workload) {
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  sim.run();
  return sim.trace();
}

/// After every arrival the windowed optimum must equal the reference
/// tracker (which keeps full history), for any prune cadence.
void expect_windowed_exact(const Trace& trace, Round prune_every) {
  PrefixOptimumTracker reference(trace.config());
  WindowedPrefixOpt windowed(trace.config());
  Round pruned_to = 0;
  for (const Request& r : trace.requests()) {
    while (pruned_to + prune_every <= r.arrival) {
      pruned_to += prune_every;
      windowed.advance_to(pruned_to);
    }
    const bool grew_ref = reference.add_request(r);
    const bool grew_win = windowed.add_request(r);
    EXPECT_EQ(grew_win, grew_ref) << "growth flag diverged at " << r;
    ASSERT_EQ(windowed.optimum(), reference.optimum())
        << "windowed != reference after " << r << " (prune cadence "
        << prune_every << ")";
  }
  EXPECT_EQ(windowed.requests_seen(), trace.size());
  // Advancing past the last deadline drains the reachable region entirely:
  // every matched pair retires, nothing stays resident.
  windowed.advance_to(trace.last_useful_round() + trace.config().d + 1);
  EXPECT_EQ(windowed.optimum(), reference.optimum());
  EXPECT_EQ(windowed.live_slots(), 0);
  EXPECT_EQ(windowed.live_matched(), 0);
}

TEST(WindowedPrefixOpt, MatchesReferenceTrackerOnRandomStreams) {
  for (const std::uint64_t seed : {3u, 17u, 59u}) {
    // load 2.6 saturates the system, exercising the failed-search (dead
    // marking) path; 0.7 keeps it mostly augmenting.
    for (const double load : {0.7, 1.4, 2.6}) {
      UniformWorkload workload({.n = 3, .d = 3, .load = load, .horizon = 40,
                                .seed = seed, .two_choice = true});
      const Trace trace = realized_trace(workload);
      for (const Round cadence : {1, 4, 9}) {
        expect_windowed_exact(trace, cadence);
      }
    }
  }
}

TEST(WindowedPrefixOpt, MatchesReferenceOnBurstsAndSingleChoice) {
  for (const std::uint64_t seed : {5u, 21u}) {
    UniformWorkload single({.n = 4, .d = 2, .load = 1.8, .horizon = 36,
                            .seed = seed, .two_choice = false});
    expect_windowed_exact(realized_trace(single), 1);
    BurstyWorkload bursty({.n = 3, .d = 4, .load = 1.5, .horizon = 36,
                           .seed = seed, .two_choice = true},
                          0.3, 6);
    expect_windowed_exact(realized_trace(bursty), 5);
  }
}

TEST(WindowedPrefixOpt, StaysBoundedOnASaturatedStream) {
  // Overload (load 2.5 on n = 4): without the dead-marking retirement the
  // saturated region stays reachable and live_slots grows with the horizon.
  const auto peak_at = [](Round horizon) {
    UniformWorkload workload({.n = 4, .d = 3, .load = 2.5, .horizon = horizon,
                              .seed = 7, .two_choice = true});
    const Trace trace = realized_trace(workload);
    WindowedPrefixOpt windowed(trace.config());
    Round pruned_to = 0;
    for (const Request& r : trace.requests()) {
      while (pruned_to < r.arrival) windowed.advance_to(++pruned_to);
      windowed.add_request(r);
    }
    return windowed.peak_live_slots();
  };
  const std::int64_t short_peak = peak_at(60);
  const std::int64_t long_peak = peak_at(480);
  // 8x the stream, same resident peak (small additive slack for warmup).
  EXPECT_LE(long_peak, short_peak + 8);
}

// ---------------------------------------------------------------------------
// Differential: streaming engine vs legacy Simulator

struct StreamedRun {
  Metrics metrics;
  std::vector<std::pair<RequestId, SlotRef>> matching;
  std::int64_t live_opt = -1;
  std::int64_t peak_pending = 0;
  std::int64_t max_per_round = 0;
};

/// Runs `workload`/`strategy` through a bounded-memory engine, collecting
/// the online matching through the retire sink.
StreamedRun run_streaming(IWorkload& workload, IStrategy& strategy,
                          bool need_trace, bool track_opt) {
  StreamedRun out;
  EngineOptions options = streaming_options();
  options.record_trace = need_trace;
  options.track_live_opt = track_opt;
  options.opt_prune_every = 3;
  options.retire_sink = [&out](const Request& r, RequestStatus status,
                               SlotRef slot) {
    if (status == RequestStatus::kFulfilled) {
      out.matching.emplace_back(r.id, slot);
    }
  };
  Simulator sim(workload, strategy, std::move(options));
  out.metrics = sim.run();
  if (track_opt) out.live_opt = sim.engine().live_optimum();
  out.peak_pending = sim.engine().pool().peak_live();
  out.max_per_round = sim.engine().pool().max_admitted_per_round();
  return out;
}

/// The central differential assertion: identical Metrics (all fields) and
/// an identical online matching, request by request, slot by slot.
void expect_bit_identical(Simulator& legacy, const StreamedRun& streamed) {
  const Metrics& reference = legacy.run();
  EXPECT_TRUE(reference == streamed.metrics)
      << "metrics diverged: legacy " << reference << " vs streaming "
      << streamed.metrics;
  auto expected = legacy.online_matching();
  auto actual = streamed.matching;
  const auto by_id = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(expected.begin(), expected.end(), by_id);
  std::sort(actual.begin(), actual.end(), by_id);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].first, expected[i].first);
    EXPECT_EQ(actual[i].second, expected[i].second)
        << "r" << expected[i].first << " executed in a different slot";
  }
}

TEST(StreamingDifferential, LowerBoundInstancesAreBitIdentical) {
  const auto cases = [] {
    std::vector<std::function<TheoremInstance()>> makers;
    makers.emplace_back([] { return make_lb_fix(4, 3); });
    makers.emplace_back([] { return make_lb_current(3, 3); });
    makers.emplace_back([] { return make_lb_fix_balance(4, 3); });
    makers.emplace_back([] { return make_lb_eager(4, 3); });
    makers.emplace_back([] { return make_lb_balance(2, 2, 3); });
    return makers;
  }();
  for (const auto& make : cases) {
    TheoremInstance legacy_inst = make();
    TheoremInstance stream_inst = make();
    ScriptedStrategy legacy_strategy(legacy_inst.target,
                                     *legacy_inst.workload);
    ScriptedStrategy stream_strategy(stream_inst.target,
                                     *stream_inst.workload);
    // Planned instances read sim.trace() to follow their script, so the
    // streaming run keeps trace recording on (history retention stays off).
    const StreamedRun streamed =
        run_streaming(*stream_inst.workload, stream_strategy,
                      /*need_trace=*/true, /*track_opt=*/false);
    Simulator legacy(*legacy_inst.workload, legacy_strategy);
    expect_bit_identical(legacy, streamed);
    EXPECT_EQ(stream_strategy.violations(), legacy_strategy.violations());
  }
}

TEST(StreamingDifferential, TwoHundredRandomTracesAreBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const RandomWorkloadOptions options{
        .n = static_cast<std::int32_t>(2 + seed % 4),
        .d = static_cast<std::int32_t>(1 + seed % 3),
        .load = 0.5 + 0.1 * static_cast<double>(seed % 14),
        .horizon = static_cast<Round>(8 + seed % 9),
        .seed = seed,
        .two_choice = seed % 3 != 0};
    UniformWorkload legacy_workload(options);
    UniformWorkload stream_workload(options);
    auto legacy_strategy = make_strategy("A_fix");
    auto stream_strategy = make_strategy("A_fix");
    const StreamedRun streamed =
        run_streaming(stream_workload, *stream_strategy,
                      /*need_trace=*/false, /*track_opt=*/true);
    Simulator legacy(legacy_workload, *legacy_strategy);
    expect_bit_identical(legacy, streamed);
    // And the windowed live optimum equals the offline solver on the
    // realized trace — the streaming ratio monitor is exact, not a proxy.
    EXPECT_EQ(streamed.live_opt, offline_optimum(legacy.trace()))
        << "windowed OPT diverged from offline on seed " << seed;
  }
}

TEST(StreamingSoak, MillionRequestStreamStaysWindowed) {
  // ~16 arrivals/round on n = 8, d = 3 for 70k rounds: >= 1M requests
  // through a pool whose resident state must stay O(arrivals-per-round * d).
  UniformWorkload workload({.n = 8, .d = 3, .load = 2.0, .horizon = 70'000,
                            .seed = 11, .two_choice = true});
  auto strategy = make_strategy("A_balance");
  Simulator sim(workload, *strategy, streaming_options());
  const Metrics& metrics = sim.run(200'000);  // run() asserts conservation
  EXPECT_GE(metrics.injected, 1'000'000);
  const RequestPool& pool = sim.engine().pool();
  EXPECT_LE(pool.peak_live(),
            pool.max_admitted_per_round() * pool.config().d);
  EXPECT_EQ(pool.slab_capacity(), pool.peak_live());
  EXPECT_EQ(pool.live_count(), 0);
  EXPECT_EQ(metrics.injected, static_cast<std::int64_t>(pool.next_id()));
}

// ---------------------------------------------------------------------------
// Engine odds and ends

TEST(Metrics, ConservationCheckCatchesLeaks) {
  Metrics m;
  m.injected = 10;
  m.fulfilled = 6;
  m.expired = 3;
  EXPECT_THROW(m.check_conservation(0), ContractViolation);
  m.check_conservation(1);  // 6 + 3 + 1 == 10
}

TEST(Metrics, StreamPrintsCommunicationOnlyWhenUsed) {
  Metrics m;
  std::ostringstream quiet;
  quiet << m;
  EXPECT_EQ(quiet.str().find("comm_rounds"), std::string::npos);
  m.communication_rounds = 2;
  m.messages = 5;
  std::ostringstream chatty;
  chatty << m;
  EXPECT_NE(chatty.str().find("comm_rounds=2"), std::string::npos);
  EXPECT_NE(chatty.str().find("messages=5"), std::string::npos);
}

TEST(StreamingEngine, StreamingModeRefusesHistoryQueries) {
  UniformWorkload workload({.n = 2, .d = 2, .load = 1.0, .horizon = 6,
                            .seed = 1, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy, streaming_options());
  sim.run();
  EXPECT_THROW(sim.trace(), ContractViolation);
  EXPECT_THROW(sim.online_matching(), ContractViolation);
  EXPECT_THROW(sim.engine().live_optimum(), ContractViolation);
}

TEST(StreamingEngine, SnapshotCountsAndConserves) {
  UniformWorkload workload({.n = 3, .d = 2, .load = 1.5, .horizon = 50,
                            .seed = 4, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  EngineOptions options = streaming_options();
  options.track_live_opt = true;
  options.snapshot_every = 10;
  std::vector<StatsSnapshot> seen;
  options.snapshot_sink = [&seen](const StatsSnapshot& s) {
    seen.push_back(s);
  };
  Simulator sim(workload, *strategy, std::move(options));
  const Metrics& metrics = sim.run();
  ASSERT_GE(seen.size(), 5u);
  for (const StatsSnapshot& s : seen) {
    EXPECT_EQ(s.injected, s.fulfilled + s.expired + s.pending);
    EXPECT_GE(s.live_opt, s.fulfilled);  // OPT dominates any online run
  }
  EXPECT_EQ(seen.back().round, metrics.rounds - metrics.rounds % 10);
}

// ---------------------------------------------------------------------------
// ShardedRunner

ShardedResult run_shard_grid(std::size_t threads, std::ostream* jsonl) {
  ShardedRunOptions options;
  options.shards = 4;
  options.threads = threads;
  options.engine.track_live_opt = true;
  options.engine.snapshot_every = 16;
  options.jsonl = jsonl;
  return run_sharded(
      options,
      [](std::int64_t shard) {
        return std::make_unique<UniformWorkload>(RandomWorkloadOptions{
            .n = 3, .d = 2, .load = 1.6, .horizon = 64,
            .seed = 100 + static_cast<std::uint64_t>(shard),
            .two_choice = true});
      },
      [](std::int64_t) { return make_strategy("A_balance"); });
}

TEST(ShardedRunner, ResultsAreIndependentOfThreadCount) {
  const ShardedResult serial = run_shard_grid(1, nullptr);
  const ShardedResult parallel = run_shard_grid(4, nullptr);
  ASSERT_TRUE(serial.all_ok());
  ASSERT_TRUE(parallel.all_ok());
  ASSERT_EQ(serial.shards.size(), parallel.shards.size());
  for (std::size_t i = 0; i < serial.shards.size(); ++i) {
    EXPECT_EQ(serial.shards[i].shard, parallel.shards[i].shard);
    EXPECT_TRUE(serial.shards[i].metrics == parallel.shards[i].metrics)
        << "shard " << i << " depends on the thread count";
  }
  EXPECT_TRUE(serial.total == parallel.total);
  EXPECT_EQ(serial.peak_pending, parallel.peak_pending);
}

TEST(ShardedRunner, WritesOneJsonObjectPerSnapshotLine) {
  std::ostringstream jsonl;
  const ShardedResult result = run_shard_grid(2, &jsonl);
  ASSERT_TRUE(result.all_ok());
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"shard\":"), std::string::npos);
    EXPECT_NE(line.find("\"live_ratio\":"), std::string::npos);
  }
  // At least the final snapshot of each shard.
  EXPECT_GE(count, static_cast<std::size_t>(result.shards.size()));
}

TEST(ShardedRunner, ReportsAThrowingShardInsteadOfDying) {
  ShardedRunOptions options;
  options.shards = 2;
  options.threads = 2;
  const ShardedResult result = run_sharded(
      options,
      [](std::int64_t shard) {
        // Shard 1 is malformed: d = 0 fails ProblemConfig::validate.
        const std::int32_t d = shard == 1 ? 0 : 2;
        return std::make_unique<UniformWorkload>(RandomWorkloadOptions{
            .n = 2, .d = d, .load = 1.0, .horizon = 8, .seed = 1,
            .two_choice = true});
      },
      [](std::int64_t) { return make_strategy("A_fix"); });
  EXPECT_EQ(result.failed, 1);
  EXPECT_TRUE(result.shards[0].ok());
  EXPECT_FALSE(result.shards[1].ok());
  EXPECT_FALSE(result.shards[1].error.empty());
}

}  // namespace
}  // namespace reqsched
