// Tests for the per-round time-series probe.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "adversary/random.hpp"
#include "analysis/registry.hpp"
#include "analysis/timeseries.hpp"
#include "engine/simulator.hpp"

namespace reqsched {
namespace {

TEST(TimeSeries, SamplesEveryRoundConsistently) {
  UniformWorkload workload({.n = 4, .d = 3, .load = 1.5, .horizon = 40,
                            .seed = 2, .two_choice = true});
  TimeSeriesProbe probe(make_strategy("A_balance"));
  Simulator sim(workload, probe);
  sim.run();

  ASSERT_EQ(static_cast<std::int64_t>(probe.samples().size()),
            sim.metrics().rounds);
  std::int64_t injected = 0;
  std::int64_t executed = 0;
  Round previous = -1;
  for (const RoundSample& s : probe.samples()) {
    EXPECT_EQ(s.round, previous + 1);
    previous = s.round;
    EXPECT_GE(s.executed, 0);
    EXPECT_LE(s.executed, 4);
    EXPECT_EQ(s.executed + s.idle, 4);
    EXPECT_GE(s.booked, s.executed);  // bookings include the current row
    if (s.pending > 0) {
      EXPECT_GE(s.tightest_slack, 0);
    }
    // The plain probe does not track prefix optima; the columns must be
    // explicitly marked untracked, not zero.
    EXPECT_FALSE(s.has_prefix());
    EXPECT_EQ(s.prefix_opt, -1);
    EXPECT_EQ(s.prefix_fulfilled, -1);
    injected += s.injected;
    executed += s.executed;
  }
  EXPECT_EQ(injected, sim.metrics().injected);
  EXPECT_EQ(executed, sim.metrics().fulfilled);
}

TEST(TimeSeries, CsvRowsMatchSamples) {
  UniformWorkload workload({.n = 3, .d = 2, .load = 1.0, .horizon = 10,
                            .seed = 3, .two_choice = true});
  TimeSeriesProbe probe(make_strategy("A_fix"));
  Simulator sim(workload, probe);
  sim.run();
  std::ostringstream os;
  write_timeseries_csv(os, probe.samples());
  const std::string csv = os.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            probe.samples().size() + 1);
}

TEST(TimeSeries, SummaryIsCoherent) {
  UniformWorkload workload({.n = 5, .d = 3, .load = 2.0, .horizon = 50,
                            .seed = 4, .two_choice = true});
  TimeSeriesProbe probe(make_strategy("A_eager"));
  Simulator sim(workload, probe);
  sim.run();
  const TimeSeriesSummary summary = summarize_timeseries(probe.samples(), 5);
  EXPECT_GT(summary.mean_utilization, 0.3);  // load 2.0: busy system
  EXPECT_LE(summary.mean_utilization, 1.0);
  EXPECT_GE(summary.peak_pending, 1);
  EXPECT_EQ(summary.rounds,
            static_cast<std::int64_t>(probe.samples().size()));
  EXPECT_TRUE(std::isnan(summary.final_prefix_ratio));
  EXPECT_TRUE(std::isnan(summary.max_prefix_ratio));
}

TEST(TimeSeries, ResetClearsSamples) {
  UniformWorkload workload({.n = 2, .d = 2, .load = 1.0, .horizon = 5,
                            .seed = 5, .two_choice = true});
  TimeSeriesProbe probe(make_strategy("A_fix"));
  {
    Simulator sim(workload, probe);
    sim.run();
  }
  const std::size_t first = probe.samples().size();
  EXPECT_GT(first, 0u);
  {
    Simulator sim(workload, probe);  // constructor resets the strategy
    sim.run();
  }
  EXPECT_EQ(probe.samples().size(), first);
}

TEST(TimeSeries, EmptySummary) {
  const TimeSeriesSummary summary = summarize_timeseries({}, 4);
  EXPECT_EQ(summary.rounds, 0);
  EXPECT_DOUBLE_EQ(summary.mean_utilization, 0.0);
}

}  // namespace
}  // namespace reqsched
