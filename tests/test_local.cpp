// Tests for the message-passing substrate and the two local strategies.
#include <gtest/gtest.h>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/bounds.hpp"
#include "analysis/harness.hpp"
#include "local/local_eager.hpp"
#include "local/local_fix.hpp"
#include "local/router.hpp"

namespace reqsched {
namespace {

TEST(Router, EnforcesBandwidthWithLdfOrder) {
  const ProblemConfig config{2, 2};  // capacity d = 2 per resource
  std::vector<Message> messages{
      {0, 0, 5, false, 0},   // deadline 5
      {1, 0, 9, false, 0},   // deadline 9 (latest -> first)
      {2, 0, 7, false, 0},   // deadline 7
      {3, 1, 1, false, 0},
  };
  const Delivery delivery = route_messages(config, messages);
  ASSERT_EQ(delivery.delivered[0].size(), 2u);
  EXPECT_EQ(delivery.delivered[0][0].sender, 1);  // latest deadline first
  EXPECT_EQ(delivery.delivered[0][1].sender, 2);
  ASSERT_EQ(delivery.failed.size(), 1u);
  EXPECT_EQ(delivery.failed[0].sender, 0);
  ASSERT_EQ(delivery.delivered[1].size(), 1u);
}

TEST(Router, TiesBreakTowardsEarlierRequests) {
  const ProblemConfig config{1, 1};  // capacity 1
  std::vector<Message> messages{
      {7, 0, 5, false, 0},
      {3, 0, 5, false, 0},  // same deadline, earlier id -> wins
  };
  const Delivery delivery = route_messages(config, messages);
  ASSERT_EQ(delivery.delivered[0].size(), 1u);
  EXPECT_EQ(delivery.delivered[0][0].sender, 3);
}

TEST(Router, PriorityTagBypassesBandwidth) {
  const ProblemConfig config{1, 1};
  std::vector<Message> messages{
      {1, 0, 9, false, 0},
      {2, 0, 8, false, 0},
      {3, 0, 1, true, 0},  // tagged: delivered regardless
  };
  const Delivery delivery = route_messages(config, messages);
  ASSERT_EQ(delivery.delivered[0].size(), 2u);
  EXPECT_EQ(delivery.delivered[0][0].sender, 3);  // tagged first
  EXPECT_EQ(delivery.delivered[0][1].sender, 1);
}

TEST(ALocalFixTest, UsesAtMostTwoCommunicationRoundsPerRound) {
  UniformWorkload workload({.n = 4, .d = 3, .load = 1.5, .horizon = 50,
                            .seed = 3, .two_choice = true});
  ALocalFix strategy;
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_LE(sim.metrics().communication_rounds, 2 * sim.metrics().rounds);
  EXPECT_GT(sim.metrics().messages, 0);
}

TEST(ALocalFixTest, NeverWorseThanTwiceOpt) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    UniformWorkload workload({.n = 5, .d = 4, .load = 1.7, .horizon = 60,
                              .seed = seed, .two_choice = true});
    ALocalFix strategy;
    const RunResult result = run_experiment(workload, strategy);
    EXPECT_LE(result.ratio, ub_local_fix().to_double() + 1e-12)
        << "seed " << seed;
    // Theorem 3.7 upper-bound argument: no order-1 augmenting paths.
    if (result.paths.augmenting_paths > 0) {
      EXPECT_GE(result.paths.min_order, 2) << "seed " << seed;
    }
  }
}

TEST(ALocalEagerTest, UsesAtMostNineCommunicationRoundsPerRound) {
  UniformWorkload workload({.n = 4, .d = 3, .load = 1.8, .horizon = 50,
                            .seed = 4, .two_choice = true});
  ALocalEager strategy;
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_LE(sim.metrics().communication_rounds, 9 * sim.metrics().rounds);
}

TEST(ALocalEagerTest, RespectsFiveThirdsOnWorkloadSuite) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    UniformWorkload workload({.n = 5, .d = 4, .load = 1.7, .horizon = 60,
                              .seed = seed, .two_choice = true});
    ALocalEager strategy;
    const RunResult result = run_experiment(workload, strategy);
    EXPECT_LE(result.ratio, ub_local_eager().to_double() + 1e-12)
        << "seed " << seed;
  }
}

TEST(ALocalEagerTest, BeatsLocalFixOnitsWorstInstance) {
  auto instance_fix = make_lb_local_fix(4, 6);
  ALocalFix local_fix;
  const RunResult fix_run = run_experiment(*instance_fix, local_fix);
  EXPECT_DOUBLE_EQ(fix_run.ratio, 2.0);

  auto instance_eager = make_lb_local_fix(4, 6);
  ALocalEager local_eager;
  const RunResult eager_run = run_experiment(*instance_eager, local_eager);
  EXPECT_LT(eager_run.ratio, fix_run.ratio);
  EXPECT_LE(eager_run.ratio, ub_local_eager().to_double() + 1e-12);
}

TEST(ALocalEagerTest, PhaseTwoPullsBookingsForward) {
  // One resource pair, d = 2. Round 0: r0 books (0,0), r1 books (0,1)
  // (first-alternative routing, S1 untouched). In the same round, phase 2
  // offers r1 (booked at a future slot) to its other alternative S1, whose
  // current slot is idle — r1 must move to (1,0) and execute immediately.
  Trace trace(ProblemConfig{2, 2});
  trace.add(0, RequestSpec{0, 1, 0});  // r0
  trace.add(0, RequestSpec{0, 1, 0});  // r1
  TraceWorkload workload(trace);
  ALocalEager strategy;
  Simulator sim(workload, strategy);
  sim.step();
  EXPECT_EQ(sim.status(0), RequestStatus::kFulfilled);
  EXPECT_EQ(sim.status(1), RequestStatus::kFulfilled);
  EXPECT_EQ(sim.fulfilled_slot(0), (SlotRef{0, 0}));
  EXPECT_EQ(sim.fulfilled_slot(1), (SlotRef{1, 0}));
  EXPECT_EQ(sim.metrics().reassignments, 1);  // the phase-2 move
}

TEST(ALocalEagerTest, RivalryExchangeRescuesABlockedRequest) {
  // d = 2, three resources. After round 0, a1 (alts 0,2) holds slot (0,1)
  // and S2 is idle at round 1. At round 1 the arrivals fill every slot q
  // (alts 0,1) could use — q fails Phase 1 on both alternatives, and
  // Phase 2 has nothing to pull. Phase 3 then brokers the exchange: q
  // rivals at S0, learns about a1, re-homes a1 to (2,1) and takes (0,1).
  Trace trace(ProblemConfig{3, 2});
  trace.add(0, RequestSpec{0, 1, 0});  // a0 -> (0,0)
  trace.add(0, RequestSpec{0, 2, 0});  // a1 -> (0,1), the displaceable one
  trace.add(0, RequestSpec{1, 2, 0});  // a2 -> (1,0)
  trace.add(0, RequestSpec{1, 2, 0});  // a3 -> (1,1)
  trace.add(0, RequestSpec{2, 0, 0});  // a4 -> (2,0), keeps Phase 2 quiet
  trace.add(1, RequestSpec{0, 1, 0});  // b0 -> (0,2)
  trace.add(1, RequestSpec{1, 0, 0});  // b1 -> (1,2)
  trace.add(1, RequestSpec{0, 1, 0});  // q: both alternatives full

  {
    TraceWorkload workload(trace);
    ALocalEager strategy;
    Simulator sim(workload, strategy);
    const Metrics& metrics = sim.run();
    EXPECT_EQ(metrics.fulfilled, 8);  // exchange rescues q
    EXPECT_EQ(metrics.expired, 0);
    EXPECT_EQ(sim.status(7), RequestStatus::kFulfilled);
    EXPECT_EQ(sim.fulfilled_slot(7), (SlotRef{0, 1}));  // q got a1's slot
    EXPECT_EQ(sim.fulfilled_slot(1), (SlotRef{2, 1}));  // a1 re-homed
    EXPECT_GE(metrics.reassignments, 1);
  }
  {
    // A_local_fix cannot rescue q: it never revisits placed requests.
    TraceWorkload workload(trace);
    ALocalFix strategy;
    Simulator sim(workload, strategy);
    EXPECT_EQ(sim.run().fulfilled, 7);
  }
}

TEST(ALocalEagerTest, MergedVariantStaysWithinEightRounds) {
  // The paper's note: bandwidth 2d-2 overlaps Phase 2's last round with
  // Phase 3's first, for <= 8 communication rounds per scheduling round.
  UniformWorkload workload({.n = 5, .d = 4, .load = 1.8, .horizon = 60,
                            .seed = 21, .two_choice = true});
  ALocalEager merged(true);
  Simulator sim(workload, merged);
  sim.run();
  EXPECT_LE(sim.metrics().communication_rounds, 8 * sim.metrics().rounds);

  // Quality is unchanged within the 5/3 bound.
  UniformWorkload workload2({.n = 5, .d = 4, .load = 1.8, .horizon = 60,
                             .seed = 21, .two_choice = true});
  ALocalEager merged2(true);
  const RunResult result = run_experiment(workload2, merged2);
  EXPECT_LE(result.ratio, ub_local_eager().to_double() + 1e-12);
}

TEST(ALocalEagerTest, LeavesNoOrderOnePaths) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    BlockStormWorkload workload({.n = 6, .d = 4, .load = 1.0, .horizon = 60,
                                 .seed = seed, .two_choice = true},
                                0.5, 4);
    ALocalEager strategy;
    const RunResult result = run_experiment(workload, strategy);
    if (result.paths.augmenting_paths > 0) {
      EXPECT_GE(result.paths.min_order, 2) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace reqsched
