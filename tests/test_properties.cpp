// Cross-cutting property sweeps: for every (strategy, workload, n, d, seed)
// combination the run must satisfy the model's global invariants.
#include <gtest/gtest.h>

#include <set>

#include "adversary/random.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"

namespace reqsched {
namespace {

struct SweepCase {
  std::string strategy;
  std::int32_t n;
  std::int32_t d;
  std::uint64_t seed;
};

class InvariantSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(InvariantSweep, RunObeysModelInvariants) {
  const SweepCase& c = GetParam();
  UniformWorkload workload({.n = c.n, .d = c.d, .load = 1.5, .horizon = 40,
                            .seed = c.seed, .two_choice = true});
  auto strategy = make_strategy(c.strategy);
  Simulator sim(workload, *strategy);
  sim.run();

  const Metrics& m = sim.metrics();
  // Conservation: every injected request is fulfilled or expired.
  EXPECT_EQ(m.injected, m.fulfilled + m.expired);
  EXPECT_EQ(m.injected, sim.trace().size());

  // The final online matching is a valid schedule: one request per slot,
  // every execution inside the request's own window and alternatives.
  std::set<std::pair<ResourceId, Round>> used;
  for (const auto& [id, slot] : sim.online_matching()) {
    const Request& r = sim.request(id);
    EXPECT_TRUE(r.allows_slot(slot)) << r << " executed at " << slot;
    EXPECT_TRUE(used.emplace(slot.resource, slot.round).second);
  }

  // Statuses are consistent with the matching.
  std::int64_t fulfilled = 0;
  for (RequestId id = 0; id < sim.trace().size(); ++id) {
    const auto status = sim.status(id);
    EXPECT_NE(status, RequestStatus::kPending);
    if (status == RequestStatus::kFulfilled) {
      ++fulfilled;
      EXPECT_TRUE(sim.fulfilled_slot(id).valid());
    } else {
      EXPECT_FALSE(sim.fulfilled_slot(id).valid());
    }
  }
  EXPECT_EQ(fulfilled, m.fulfilled);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const auto& strategy : all_strategy_names()) {
    if (strategy == "EDF_single") continue;  // needs single-alt workloads
    for (const std::int32_t n : {2, 6}) {
      for (const std::int32_t d : {1, 2, 4, 7}) {
        if ((strategy == "A_local_fix" || strategy == "A_local_eager") &&
            n < 2) {
          continue;
        }
        cases.push_back(SweepCase{strategy, n, d, 97u + static_cast<std::uint64_t>(n * d)});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, InvariantSweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& param_info) {
                           const SweepCase& c = param_info.param;
                           return c.strategy + "_n" + std::to_string(c.n) +
                                  "_d" + std::to_string(c.d);
                         });

class OptDominanceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(OptDominanceSweep, OfflineOptimumDominatesEveryStrategy) {
  const SweepCase& c = GetParam();
  ZipfWorkload workload({.n = c.n, .d = c.d, .load = 1.8, .horizon = 40,
                         .seed = c.seed, .two_choice = true},
                        1.2);
  auto strategy = make_strategy(c.strategy);
  const RunResult result = run_experiment(workload, *strategy);
  EXPECT_GE(result.optimum, result.metrics.fulfilled);
  EXPECT_GE(result.ratio, 1.0 - 1e-12);
}

std::vector<SweepCase> dominance_cases() {
  std::vector<SweepCase> cases;
  for (const auto& strategy : all_strategy_names()) {
    if (strategy == "EDF_single") continue;
    cases.push_back(SweepCase{strategy, 5, 3, 7u});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, OptDominanceSweep,
                         ::testing::ValuesIn(dominance_cases()),
                         [](const auto& param_info) { return param_info.param.strategy; });

TEST(Scale, LargeRunCompletesAndStaysConsistent) {
  // Stress: 32 resources, deadline 8, ~300 rounds of overloaded traffic
  // under the most expensive strategy (A_balance: d staged flows per
  // round), with the exact offline optimum on the realized ~12k-request
  // trace. Guards against superlinear blowups sneaking into the substrate.
  UniformWorkload workload({.n = 32, .d = 8, .load = 1.3, .horizon = 300,
                            .seed = 99, .two_choice = true});
  auto strategy = make_strategy("A_balance");
  const RunResult result = run_experiment(workload, *strategy,
                                          {.analyze_paths = true});
  EXPECT_GT(result.metrics.injected, 8000);
  EXPECT_GE(result.ratio, 1.0 - 1e-12);
  EXPECT_LE(result.ratio, 1.1);  // A_balance is near-optimal on uniform load
  EXPECT_EQ(result.paths.deficiency,
            result.optimum - result.metrics.fulfilled);
}

TEST(StrategyOrdering, ReschedulingBeatsFrozenOnWorstCaseSuite) {
  // On the dense block-storm suite the paper's qualitative ordering should
  // emerge in aggregate: A_balance / A_eager (rescheduling) fulfill at
  // least as much as A_fix (frozen) on average.
  std::int64_t fix_total = 0;
  std::int64_t eager_total = 0;
  std::int64_t balance_total = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const RandomWorkloadOptions base{.n = 6, .d = 4, .load = 1.0,
                                     .horizon = 40, .seed = seed,
                                     .two_choice = true};
    {
      BlockStormWorkload w(base, 0.5, 4);
      auto s = make_strategy("A_fix");
      fix_total += run_experiment(w, *s).metrics.fulfilled;
    }
    {
      BlockStormWorkload w(base, 0.5, 4);
      auto s = make_strategy("A_eager");
      eager_total += run_experiment(w, *s).metrics.fulfilled;
    }
    {
      BlockStormWorkload w(base, 0.5, 4);
      auto s = make_strategy("A_balance");
      balance_total += run_experiment(w, *s).metrics.fulfilled;
    }
  }
  EXPECT_GE(eager_total, fix_total);
  EXPECT_GE(balance_total, fix_total);
}

}  // namespace
}  // namespace reqsched
