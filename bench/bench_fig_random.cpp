// Experiment F-C — the strategies under stochastic workloads. The paper's
// adversarial model is motivated by correlated real traffic; this bench
// spans the spectrum from i.i.d. uniform to hot-spot, bursty, and dense
// block traffic and reports mean ratio per (strategy, workload family).
//
// Runs through the parallel sweep driver; pass --csv=<path> to export the
// raw per-point grid for re-plotting.
#include <fstream>
#include <iostream>
#include <map>

#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::int32_t>(args.get_int("n", 8));
  const auto d = static_cast<std::int32_t>(args.get_int("d", 4));
  const auto horizon = args.get_int("rounds", 96);
  const auto seeds64 = args.get_int_list("seeds", {1, 2, 3, 4, 5});
  const std::string csv_path = args.get_string("csv", "");
  args.finish();

  const std::vector<std::string> families = {"uniform", "zipf", "bursty",
                                             "blockstorm"};
  std::vector<std::string> lineup = global_strategy_names();
  for (const auto& name : local_strategy_names()) lineup.push_back(name);
  lineup.push_back("EDF_two_choice");
  lineup.push_back("EDF_two_choice_cancel");
  lineup.push_back("A_current_randomized");
  lineup.push_back("A_fix_randomized");

  std::vector<std::uint64_t> seeds;
  for (const auto s : seeds64) seeds.push_back(static_cast<std::uint64_t>(s));

  // One sweep per workload family; points run across the thread pool.
  std::map<std::string, std::vector<SweepPoint>> results;
  for (const std::string& family : families) {
    SweepSpec spec;
    spec.strategies = lineup;
    spec.ns = {n};
    spec.ds = {d};
    spec.seeds = seeds;
    spec.make_workload = [&, family](std::int32_t nn, std::int32_t dd,
                                     std::uint64_t seed)
        -> std::unique_ptr<IWorkload> {
      const RandomWorkloadOptions base{.n = nn, .d = dd, .load = 1.6,
                                       .horizon = horizon, .seed = seed,
                                       .two_choice = true};
      if (family == "uniform") return std::make_unique<UniformWorkload>(base);
      if (family == "zipf") return std::make_unique<ZipfWorkload>(base, 1.2);
      if (family == "bursty") {
        return std::make_unique<BurstyWorkload>(base, 0.25, 2 * nn);
      }
      return std::make_unique<BlockStormWorkload>(base, 0.5, std::min(nn, 4));
    };
    results.emplace(family, run_sweep(spec));
  }

  std::vector<std::string> header{"strategy"};
  for (const auto& family : families) header.push_back(family + " (mean)");
  header.push_back("worst");
  AsciiTable table(header);
  table.set_title("F-C  mean competitive ratio under stochastic workloads "
                  "(n=" + std::to_string(n) + ", d=" + std::to_string(d) +
                  ")");

  for (const std::string& name : lineup) {
    std::vector<std::string> row{name};
    double worst = 1.0;
    for (const auto& family : families) {
      double sum = 0.0;
      std::int64_t count = 0;
      for (const SweepPoint& p : results[family]) {
        if (p.strategy != name) continue;
        REQSCHED_CHECK_MSG(!p.failed, p.error);
        sum += p.result.ratio;
        worst = std::max(worst, p.result.ratio);
        ++count;
      }
      row.push_back(fmt(sum / static_cast<double>(count)));
    }
    row.push_back(fmt(worst));
    table.add_row(row);
  }
  table.print(std::cout);

  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    for (const auto& family : families) {
      write_sweep_csv(file, results[family]);
    }
    std::cout << "wrote raw grid to " << csv_path << '\n';
  }
  std::cout << "\nOn benign traffic every matching strategy sits near 1.0 —\n"
               "the worst-case gaps of Table 1 require adversarial\n"
               "correlation (block storms come closest). Independent-copy\n"
               "EDF is the outlier, paying for duplicate service even on\n"
               "random input; randomized tie-breaking matches the\n"
               "deterministic references here (ties rarely matter off the\n"
               "adversarial path).\n";
  return 0;
}
