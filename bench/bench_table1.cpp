// Experiment T1 — the headline reproduction of Table 1.
//
// For every strategy row the bench measures
//  * the lower bound, by executing the theorem's adversarial construction
//    (scripted tie-breaking, machine-checked against the strategy's rules)
//    and reporting the startup-free per-phase ratio, and
//  * the upper bound, by reporting the worst ratio observed across the
//    randomized + adversarial suite, which must stay below the theorem.
//
// Deadline for the d-dependent rows: --d (default 8; the Theorem 2.5 row
// rounds to the nearest d = 3x - 1, the Theorem 2.2 row uses its own d).
#include <iostream>

#include "adversary/universal.hpp"
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto d = static_cast<std::int32_t>(args.get_int("d", 8));
  args.finish();
  REQSCHED_CHECK_MSG(d >= 4 && d % 2 == 0, "--d must be even and >= 4");

  AsciiTable table({"Algorithm", "LB (thm)", "LB measured", "UB (thm)",
                    "suite max", "tight?"});
  table.set_title(
      "Table 1 — upper and lower bounds for the global strategies (d = " +
      std::to_string(d) + ")");

  const auto row = [&](const std::string& name, const std::string& lb_text,
                       double lb_measured, const Fraction& ub,
                       double suite_max, bool tight) {
    std::ostringstream ub_text;
    ub_text << ub << " = " << fmt(ub.to_double());
    table.add_row({name, lb_text, fmt(lb_measured), ub_text.str(),
                   fmt(suite_max), tight ? "LB == UB" : ""});
  };

  // --- A_fix: LB = UB = 2 - 1/d (Theorems 2.1, 3.3). ---
  {
    std::ostringstream lb;
    lb << lb_fix(d) << " = " << fmt(lb_fix(d).to_double());
    const double measured = scripted_slope(
        [&](std::int32_t p) { return make_lb_fix(d, p); }, 4, 8);
    row("A_fix", lb.str(), measured, ub_fix(d),
        suite_max_ratio("A_fix", 5, d), true);
  }

  // --- A_current: LB -> e/(e-1), UB 2 - 1/d (Theorems 2.2, 3.3). ---
  {
    const std::int32_t ell = 5;
    const std::int32_t dc = lb_current_min_deadline(ell);
    const double measured = reference_slope(
        [&](std::int32_t p) {
          return std::move(make_lb_current(ell, p).workload);
        },
        "A_current", 3, 6);
    std::ostringstream lb;
    lb << "e/(e-1) = " << fmt(lb_current_limit()) << " (d->inf)";
    row("A_current (ell=5, d=" + std::to_string(dc) + ")", lb.str(),
        measured, ub_current(dc), suite_max_ratio("A_current", 5, d), false);
  }

  // --- A_fix_balance: LB 3d/(2d+2), UB max(4/3, 2-2/d, 2-3/(d+2)). ---
  {
    std::ostringstream lb;
    lb << lb_fix_balance(d) << " = " << fmt(lb_fix_balance(d).to_double());
    const double measured = reference_slope(
        [&](std::int32_t p) {
          return std::move(make_lb_fix_balance(d, p).workload);
        },
        "A_fix_balance", 4, 8);
    row("A_fix_balance", lb.str(), measured, ub_fix_balance(d),
        suite_max_ratio("A_fix_balance", 5, d), false);
  }

  // --- A_eager: LB 4/3, UB (3d-2)/(2d-1) (Theorems 2.4, 3.5). ---
  {
    std::ostringstream lb;
    lb << lb_eager() << " = " << fmt(lb_eager().to_double());
    const double measured = scripted_slope(
        [&](std::int32_t p) { return make_lb_eager(d, p); }, 4, 8);
    row("A_eager", lb.str(), measured, ub_eager(d),
        suite_max_ratio("A_eager", 5, d), d == 2);
  }

  // --- A_balance: LB (5d+2)/(4d+1) at d = 3x-1, UB 6(d-1)/(4d-3). ---
  {
    const std::int32_t x = (d + 1) / 3 > 0 ? (d + 1) / 3 : 1;
    const std::int32_t db = 3 * x - 1;
    const std::int32_t groups = 8;
    std::ostringstream lb;
    lb << lb_balance(db) << " = " << fmt(lb_balance(db).to_double())
       << " (n->inf)";
    const double measured = scripted_slope(
        [&](std::int32_t m) { return make_lb_balance(x, groups, m); }, 4, 8);
    row("A_balance (d=" + std::to_string(db) + ")", lb.str(), measured,
        ub_balance(db), suite_max_ratio("A_balance", 5, db), false);
  }

  // --- Any deterministic A: universal LB 45/41 (Theorem 2.6). ---
  {
    const std::int32_t du = d % 3 == 0 ? d : 6;
    double weakest = 1e9;
    std::string weakest_name;
    for (const std::string& name : global_strategy_names()) {
      UniversalAdversary short_adv(du, 4);
      UniversalAdversary long_adv(du, 8);
      auto a = make_strategy(name);
      auto b = make_strategy(name);
      const RunResult ra =
          run_experiment(short_adv, *a, {.analyze_paths = false});
      const RunResult rb =
          run_experiment(long_adv, *b, {.analyze_paths = false});
      const double slope = pairwise_slope_ratio(ra, rb);
      if (slope < weakest) {
        weakest = slope;
        weakest_name = name;
      }
    }
    std::ostringstream lb;
    lb << lb_universal() << " = " << fmt(lb_universal().to_double());
    table.add_row({"any A (universal, d=" + std::to_string(du) + ")",
                   lb.str(), fmt(weakest) + " (" + weakest_name + ")", "-",
                   "-", ""});
  }

  table.print(std::cout);
  std::cout <<
      "\nHow to read this: 'LB measured' executes the paper's Section 2\n"
      "construction (per-phase slope ratio, startup-free) — it must meet\n"
      "the 'LB (thm)' column. 'suite max' is the worst ratio over the\n"
      "randomized suite and must stay below 'UB (thm)'. A_current's\n"
      "construction converges to e/(e-1) only as ell, d grow (see\n"
      "bench_lb_current for the series); the universal row shows the\n"
      "most-resistant strategy still losing >= 45/41.\n";
  return 0;
}
