// Experiment E-2.4 — Theorem 2.4: the overlapping-phase construction that
// pins A_eager to 4/3 at every even d, and (at d = 2) also A_current,
// A_fix_balance and A_balance.
#include <cmath>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto ds = args.get_int_list("d", {2, 4, 6, 8, 12, 16});
  args.finish();

  {
    AsciiTable table({"d", "measured", "4/3", "abs err"});
    table.set_title("E-2.4  A_eager on the Theorem 2.4 adversary");
    for (const auto d64 : ds) {
      const auto d = static_cast<std::int32_t>(d64);
      const double measured = scripted_slope(
          [&](std::int32_t p) {
            return make_lb_eager(d, p, StrategyKind::kEager);
          },
          4, 8);
      table.add_row({std::to_string(d), fmt(measured), fmt(4.0 / 3.0),
                     fmt(std::abs(measured - 4.0 / 3.0), 10)});
    }
    table.print(std::cout);
  }

  {
    AsciiTable table({"strategy class", "measured at d=2", "4/3"});
    table.set_title("E-2.4  the same instance at d = 2, other classes");
    for (const StrategyKind kind :
         {StrategyKind::kCurrent, StrategyKind::kFixBalance,
          StrategyKind::kBalance}) {
      const double measured = scripted_slope(
          [&](std::int32_t p) { return make_lb_eager(2, p, kind); }, 4, 8);
      table.add_row({to_string(kind), fmt(measured), fmt(4.0 / 3.0)});
    }
    table.print(std::cout);
  }
  std::cout << "\nRescheduling does not help here: the eager rule commits\n"
               "the flexible requests to the contested pair early, and the\n"
               "later block finds half its slots gone. Theorem 3.5 shows\n"
               "4/3 is tight for A_eager at d = 2.\n";
  return 0;
}
