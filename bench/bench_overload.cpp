// Experiment F-H — the Theorem 3.4/3.6 proof machinery as statistics:
// overloaded groups, intervals, and the overloaded/normal execution split,
// per strategy, on the adversarial suite. The charging arguments work
// because failures only occur inside overloaded intervals and each interval
// carries enough executions to pay for them; this bench shows those
// quantities directly.
#include <iostream>

#include "analysis/overload.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto d = static_cast<std::int32_t>(args.get_int("d", 6));
  args.finish();

  AsciiTable table({"strategy", "failed", "ovl rounds", "groups", "intervals",
                    "mean len", "ovl exec", "normal exec", "fail/ovl-exec"});
  table.set_title("F-H  overload structure on the Theorem 2.1 + 2.3 + 2.4 "
                  "instances (d = " + std::to_string(d) + ")");

  for (const std::string& name : global_strategy_names()) {
    OverloadStats total;
    double interval_length_sum = 0;
    for (int which = 0; which < 3; ++which) {
      TheoremInstance instance =
          which == 0   ? make_lb_fix(d, 6)
          : which == 1 ? make_lb_fix_balance(d, 6)
                       : make_lb_eager(d, 6);
      auto strategy = make_strategy(name);
      Simulator sim(*instance.workload, *strategy);
      sim.run();
      const OverloadStats stats =
          analyze_overload(sim.trace(), sim.online_matching());
      total.failed_requests += stats.failed_requests;
      total.overloaded_rounds += stats.overloaded_rounds;
      total.overloaded_executions += stats.overloaded_executions;
      total.normal_executions += stats.normal_executions;
      total.groups.insert(total.groups.end(), stats.groups.begin(),
                          stats.groups.end());
      total.intervals.insert(total.intervals.end(), stats.intervals.begin(),
                             stats.intervals.end());
      interval_length_sum +=
          stats.mean_interval_length *
          static_cast<double>(stats.intervals.size());
    }
    const double mean_len =
        total.intervals.empty()
            ? 0.0
            : interval_length_sum / static_cast<double>(total.intervals.size());
    const double fail_per_exec =
        total.overloaded_executions == 0
            ? 0.0
            : static_cast<double>(total.failed_requests) /
                  static_cast<double>(total.overloaded_executions);
    table.add_row({name, std::to_string(total.failed_requests),
                   std::to_string(total.overloaded_rounds),
                   std::to_string(total.groups.size()),
                   std::to_string(total.intervals.size()), fmt(mean_len, 2),
                   std::to_string(total.overloaded_executions),
                   std::to_string(total.normal_executions),
                   fmt(fail_per_exec, 3)});
  }
  table.print(std::cout);
  std::cout <<
      "\nThe proofs charge each failed request to executions in overloaded\n"
      "intervals. For A_fix, Theorem 3.3 guarantees at most d-1 failures\n"
      "per d overloaded executions (fail/ovl-exec <= (d-1)/d = "
      << fmt(static_cast<double>(d - 1) / d, 3) << " here);\n"
      "the rescheduling strategies keep the quotient lower still — that\n"
      "is exactly why their ratios are better.\n";
  return 0;
}
