// Experiment F-D — augmenting-path order histograms: the proofs'
// structural invariants made visible. A_fix-family outcomes contain no
// order-1 augmenting paths (Theorem 3.3); A_eager and A_balance contain
// none of order <= 2 (Theorems 3.5/3.6); A_local_eager eliminates order 1
// and most of order 2 (Theorem 3.8). Higher minimum order = fewer
// chargeable losses = better ratio.
#include <iostream>

#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto seeds = args.get_int_list("seeds", {1, 2, 3, 4, 5, 6, 7, 8});
  args.finish();

  AsciiTable table({"strategy", "aug paths", "order 1", "order 2", "order 3",
                    "order 4+", "min order"});
  table.set_title(
      "F-D  augmenting-path order histogram on the block-storm suite");

  std::vector<std::string> lineup = global_strategy_names();
  for (const auto& name : local_strategy_names()) lineup.push_back(name);
  lineup.push_back("EDF_two_choice");

  // Losses (and hence augmenting paths) need adversarial structure: the
  // suite is all of Section 2's constructions plus an overloaded storm.
  const auto make_suite = [&]() {
    std::vector<std::unique_ptr<IWorkload>> suite;
    suite.push_back(std::move(make_lb_fix(6, 6).workload));
    suite.push_back(std::move(make_lb_fix_balance(6, 6).workload));
    suite.push_back(std::move(make_lb_eager(6, 6).workload));
    suite.push_back(std::move(make_lb_balance(2, 4, 6).workload));
    for (const auto seed : seeds) {
      suite.push_back(std::make_unique<BlockStormWorkload>(
          RandomWorkloadOptions{.n = 6, .d = 4, .load = 1.0, .horizon = 96,
                                .seed = static_cast<std::uint64_t>(seed),
                                .two_choice = true},
          0.9, 4));
    }
    return suite;
  };

  for (const std::string& name : lineup) {
    std::int64_t total = 0;
    std::int64_t by_order[4] = {0, 0, 0, 0};  // 1, 2, 3, 4+
    std::int64_t min_order = 0;
    for (auto& workload : make_suite()) {
      auto strategy = make_strategy(name);
      const RunResult result = run_experiment(*workload, *strategy);
      total += result.paths.augmenting_paths;
      for (std::size_t k = 1; k < result.paths.order_histogram.size(); ++k) {
        const std::size_t bucket = std::min<std::size_t>(k, 4) - 1;
        by_order[bucket] += result.paths.order_histogram[k];
      }
      if (result.paths.min_order > 0) {
        min_order = min_order == 0
                        ? result.paths.min_order
                        : std::min(min_order, result.paths.min_order);
      }
    }
    table.add_row({name, std::to_string(total), std::to_string(by_order[0]),
                   std::to_string(by_order[1]), std::to_string(by_order[2]),
                   std::to_string(by_order[3]),
                   min_order == 0 ? "-" : std::to_string(min_order)});
  }
  table.print(std::cout);
  std::cout << "\nReading guide: each augmenting path of order k is one\n"
               "request OPT serves that the strategy lost, chargeable to k\n"
               "of its own executions — which is exactly how the Section 3\n"
               "proofs turn 'min order >= 2' into ratio <= 2-1/d and\n"
               "'min order >= 3' into ratio <= (3d-2)/(2d-1).\n";
  return 0;
}
