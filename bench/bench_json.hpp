// Machine-readable bench output: a flat list of (section, metric, value,
// units) records written as a JSON array, so CI and plotting scripts can
// track gate numbers across commits without scraping stdout. Convention:
// the benches share one `BENCH_latest.json` per run — the first bench
// write()s it, later benches append_to() their sections into the same
// array (CI uploads the merged file as the PR's perf artifact).
#pragma once

#include <cmath>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace reqsched::bench {

class JsonWriter {
 public:
  void record(std::string section, std::string metric, double value,
              std::string units) {
    rows_.push_back({std::move(section), std::move(metric), value,
                     std::move(units), std::string(), false});
  }

  /// String-valued record (units "text") — run provenance like the
  /// checkpoint manifest's strategy/git-describe fields, so BENCH_latest.json
  /// is traceable to the build and configuration that produced it.
  void record_text(std::string section, std::string metric, std::string text) {
    rows_.push_back({std::move(section), std::move(metric), 0.0, "text",
                     std::move(text), true});
  }

  /// Renders every record as one JSON array of objects.
  std::string render() const {
    std::ostringstream out;
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "  " << render_row(rows_[i])
          << (i + 1 < rows_.size() ? "," : "") << '\n';
    }
    out << "]\n";
    return out.str();
  }

  void write(const std::string& path) const {
    std::ofstream file(path);
    REQSCHED_CHECK_MSG(file.good(), "cannot open " << path << " for writing");
    file << render();
  }

  /// Merges this writer's records into an existing `BENCH_*.json` array
  /// (written by write()/append_to() earlier in the same CI run), keeping
  /// the earlier sections. Falls back to write() when the file is missing
  /// or not an array.
  void append_to(const std::string& path) const {
    std::string existing;
    {
      std::ifstream in(path);
      if (in.good()) {
        existing.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
      }
    }
    const std::size_t close = existing.rfind(']');
    if (close == std::string::npos) {
      write(path);
      return;
    }
    std::string head = existing.substr(0, close);
    while (!head.empty() &&
           (head.back() == '\n' || head.back() == ' ' ||
            head.back() == '\t' || head.back() == '\r')) {
      head.pop_back();
    }
    const bool has_rows = head.find('{') != std::string::npos;
    std::ofstream file(path);
    REQSCHED_CHECK_MSG(file.good(), "cannot open " << path << " for writing");
    file << head;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      file << (i == 0 && !has_rows ? "\n" : ",\n") << "  "
           << render_row(rows_[i]);
    }
    file << "\n]\n";
  }

  bool empty() const { return rows_.empty(); }

 private:
  struct Row {
    std::string section;
    std::string metric;
    double value;
    std::string units;
    std::string text;
    bool is_text = false;
  };

  static std::string render_row(const Row& row) {
    std::ostringstream out;
    out << "{\"section\":\"" << row.section << "\",\"metric\":\""
        << row.metric << "\",\"value\":";
    if (row.is_text) {
      out << '"';
      for (const char c : row.text) {
        if (c == '"' || c == '\\') out << '\\';
        out << c;
      }
      out << '"';
    } else if (std::isfinite(row.value)) {
      out << row.value;
    } else if (std::isnan(row.value)) {
      // JSON has no NaN literal; "-inf" here used to mislabel empty-sample
      // percentiles as negative infinity.
      out << "\"nan\"";
    } else {
      out << '"' << (row.value > 0 ? "inf" : "-inf") << '"';
    }
    out << ",\"units\":\"" << row.units << "\"}";
    return out.str();
  }

  std::vector<Row> rows_;
};

}  // namespace reqsched::bench
