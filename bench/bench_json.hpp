// Machine-readable bench output: a flat list of (section, metric, value,
// units) records written as a JSON array, so CI and plotting scripts can
// track gate numbers across commits without scraping stdout. Convention:
// each bench writes one `BENCH_<name>.json` when invoked with --json=PATH.
#pragma once

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace reqsched::bench {

class JsonWriter {
 public:
  void record(std::string section, std::string metric, double value,
              std::string units) {
    rows_.push_back(
        {std::move(section), std::move(metric), value, std::move(units)});
  }

  /// Renders every record as one JSON array of objects.
  std::string render() const {
    std::ostringstream out;
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      out << "  {\"section\":\"" << row.section << "\",\"metric\":\""
          << row.metric << "\",\"value\":";
      if (std::isfinite(row.value)) {
        out << row.value;
      } else {
        out << '"' << (row.value > 0 ? "inf" : "-inf") << '"';
      }
      out << ",\"units\":\"" << row.units << "\"}"
          << (i + 1 < rows_.size() ? "," : "") << '\n';
    }
    out << "]\n";
    return out.str();
  }

  void write(const std::string& path) const {
    std::ofstream file(path);
    REQSCHED_CHECK_MSG(file.good(), "cannot open " << path << " for writing");
    file << render();
  }

  bool empty() const { return rows_.empty(); }

 private:
  struct Row {
    std::string section;
    std::string metric;
    double value;
    std::string units;
  };
  std::vector<Row> rows_;
};

}  // namespace reqsched::bench
