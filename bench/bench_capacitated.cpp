// Experiment F-N — the generalized model against its literature yardsticks.
//
// Panel 1 (capacity): mean empirical ratio OPT/ALG for the runtime globals
// on uniform capacitated traffic at b in {1, 2, 4, 8}, with the arrival
// rate scaled by b so the per-unit pressure stays constant. The reference
// column is the Kalyanasundaram–Pruhs greedy curve 1/(1 - (b/(b+1))^b)
// (tight for bounded-degree greedy per Albers–Schubert), which starts at
// the paper's 2 and falls toward e/(e-1).
//
// Panel 2 (k-choice): observed backlog imbalance — max per-resource
// bookings minus the mean — on uniform k-alternative traffic, against
// Park's (k, d)-choice gap ln ln n / ln(d/k) with batch size 1 (our
// alternative count plays Park's d). The absolute constants differ (the
// balls-into-bins model is unit-capacity, no deadlines), so the comparison
// is about the shape: the gap should shrink like 1/ln k.
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"
#include "bench_common.hpp"
#include "engine/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::int32_t>(args.get_int("n", 8));
  const auto d = static_cast<std::int32_t>(args.get_int("d", 4));
  // The offline solves at b=8 (load 12.8, ~n*b capacity units per round)
  // dominate; the defaults keep the whole run under a minute. Pass
  // --rounds/--seeds for tighter error bars.
  const auto horizon = args.get_int("rounds", 60);
  const auto seeds64 = args.get_int_list("seeds", {1, 2, 3});
  args.finish();

  const std::vector<std::int32_t> capacities = {1, 2, 4, 8};
  const std::vector<std::string> lineup = global_strategy_names();

  std::vector<std::string> header{"strategy"};
  for (const std::int32_t b : capacities) {
    header.push_back("b=" + std::to_string(b));
  }
  AsciiTable capacity_table(header);
  capacity_table.set_title(
      "F-N.1  mean ratio on uniform capacitated traffic (n=" +
      std::to_string(n) + ", d=" + std::to_string(d) + ", load 1.6*b)");

  SolverScratch scratch;
  for (const std::string& name : lineup) {
    std::vector<std::string> row{name};
    for (const std::int32_t b : capacities) {
      double sum = 0.0;
      for (const std::int64_t seed : seeds64) {
        UniformWorkload workload(
            {.n = n, .d = d, .load = 1.6 * b, .horizon = horizon,
             .seed = static_cast<std::uint64_t>(seed), .two_choice = true,
             .b = b});
        auto strategy = make_strategy(name);
        const RunResult result = run_experiment(
            workload, *strategy, {.analyze_paths = false}, scratch);
        REQSCHED_CHECK_MSG(
            result.ratio >= 1.0 - 1e-12,
            name << " beat the offline optimum at b=" << b << " seed "
                 << seed << " — the capacitated solver is miscounting");
        sum += result.ratio;
      }
      row.push_back(fmt(sum / static_cast<double>(seeds64.size())));
    }
    capacity_table.add_row(row);
  }
  std::vector<std::string> reference{"greedy bound (KP/AS)"};
  for (const std::int32_t b : capacities) {
    reference.push_back(fmt(capacitated_greedy_ratio(b)));
  }
  capacity_table.add_row(reference);
  capacity_table.print(std::cout);
  std::cout << "limit e/(e-1) = " << fmt(capacitated_greedy_limit())
            << "\n\n";

  // Panel 2: k-choice backlog imbalance. Load 1.0 keeps the system near
  // saturation without a growing backlog, so the imbalance is the
  // placement policy's doing rather than the overflow's.
  const std::vector<std::int32_t> ks = {2, 3, 4, 8};
  const auto wide_n = static_cast<std::int32_t>(args.get_int("kn", 64));
  AsciiTable choice_table(
      {"k", "observed gap (max - mean)", "park_kd_gap(n, 1, k)"});
  choice_table.set_title("F-N.2  k-choice load imbalance under A_balance (n=" +
                         std::to_string(wide_n) + ")");
  for (const std::int32_t k : ks) {
    double gap_sum = 0.0;
    for (const std::int64_t seed : seeds64) {
      UniformWorkload workload(
          {.n = wide_n, .d = 6, .load = 1.0, .horizon = 4 * horizon,
           .seed = static_cast<std::uint64_t>(seed ^ 0x9e37), .k = k});
      auto strategy = make_strategy("A_balance");
      Simulator sim(workload, *strategy);
      sim.run();
      std::vector<std::int64_t> per_resource(
          static_cast<std::size_t>(wide_n), 0);
      for (const auto& [id, slot] : sim.online_matching()) {
        ++per_resource[static_cast<std::size_t>(slot.resource)];
      }
      const auto max_load =
          *std::max_element(per_resource.begin(), per_resource.end());
      double mean = 0.0;
      for (const std::int64_t load : per_resource) {
        mean += static_cast<double>(load);
      }
      mean /= static_cast<double>(wide_n);
      gap_sum += static_cast<double>(max_load) - mean;
    }
    choice_table.add_row({std::to_string(k),
                          fmt(gap_sum / static_cast<double>(seeds64.size())),
                          fmt(choice_load_gap(wide_n, k))});
  }
  choice_table.print(std::cout);

  std::cout << "\nPanel 1: every matching-based global tracks the offline\n"
               "optimum well below the greedy curve — the window gives them\n"
               "lookahead greedy lacks — and the b=1 column reproduces the\n"
               "paper-model numbers. Panel 2: the absolute gaps include a\n"
               "deadline-expiry constant Park's model does not have, but the\n"
               "decay with k follows the predicted 1/ln k shape.\n";
  return 0;
}
