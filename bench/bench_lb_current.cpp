// Experiments E-2.2 and F-B — Theorem 2.2: A_current against the harmonic
// group construction; the measured per-phase ratio climbs towards
// e/(e-1) ~ 1.5820 as the resource count ell (and with it d = lcm(1..ell-1))
// grows.
#include <cmath>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto max_ell = static_cast<std::int32_t>(args.get_int("max-ell", 7));
  args.finish();

  AsciiTable table(
      {"ell", "d", "measured", "harmonic model", "e/(e-1) limit"});
  table.set_title("E-2.2 / F-B  A_current on the Theorem 2.2 adversary");
  for (std::int32_t ell = 2; ell <= max_ell; ++ell) {
    const std::int32_t d = lb_current_min_deadline(ell);
    const double measured = reference_slope(
        [&](std::int32_t p) {
          return std::move(make_lb_current(ell, p).workload);
        },
        "A_current", 3, 6);
    const double model =
        1.0 / lb_current_predicted_fulfilled_fraction(ell);
    table.add_row({std::to_string(ell), std::to_string(d), fmt(measured),
                   fmt(model), fmt(lb_current_limit())});
  }
  table.print(std::cout);

  {
    // Second series: the theorem needs d -> infinity too; at fixed ell the
    // measured ratio settles onto the harmonic model as d grows.
    const std::int32_t ell = 4;
    const std::int32_t base = lb_current_min_deadline(ell);
    AsciiTable scaling({"ell", "d", "measured", "harmonic model"});
    scaling.set_title("E-2.2  deadline scaling at fixed ell = 4");
    for (const std::int32_t mult : {1, 2, 4, 8}) {
      const std::int32_t d = base * mult;
      const double measured = reference_slope(
          [&](std::int32_t p) {
            return std::move(make_lb_current(ell, p, d).workload);
          },
          "A_current", 3, 6);
      scaling.add_row({std::to_string(ell), std::to_string(d), fmt(measured),
                       fmt(1.0 / lb_current_predicted_fulfilled_fraction(ell))});
    }
    scaling.print(std::cout);
  }

  std::cout << "\nThe reference A_current serves the oldest request groups\n"
               "first (Kuhn in injection order), which is exactly the\n"
               "adversarial implementation of the proof. The harmonic\n"
               "model column is the proof's sum_{i<=k} d/(ell-i+1) <= d\n"
               "budget argument evaluated at finite ell.\n";
  return 0;
}
