// Experiment F-G — randomized tie-breaking (extension): shuffling the ties
// keeps a strategy inside its class but breaks OBLIVIOUS lower-bound
// constructions, while the ADAPTIVE adversary of Theorem 2.6 is immune.
// Mean over seeds vs the deterministic worst case.
#include <iostream>

#include "adversary/universal.hpp"
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "strategies/randomized.hpp"
#include "util/cli.hpp"

namespace {
using namespace reqsched;

double slope_on(IWorkload& short_w, IWorkload& long_w, IStrategy& a,
                IStrategy& b) {
  const RunResult ra = run_experiment(short_w, a, {.analyze_paths = false});
  const RunResult rb = run_experiment(long_w, b, {.analyze_paths = false});
  return pairwise_slope_ratio(ra, rb);
}
}  // namespace

int main(int argc, char** argv) {
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto ell = static_cast<std::int32_t>(args.get_int("ell", 5));
  const auto d = static_cast<std::int32_t>(args.get_int("d", 8));
  args.finish();

  {
    AsciiTable table({"implementation", "Thm 2.2 instance (ell=5)",
                      "Thm 2.1 instance (d=8)"});
    table.set_title(
        "F-G  deterministic vs randomized ties on OBLIVIOUS adversaries");
    {
      auto sa = make_strategy("A_current");
      auto sb = make_strategy("A_current");
      auto w1 = make_lb_current(ell, 3);
      auto w2 = make_lb_current(ell, 6);
      const double current_det =
          slope_on(*w1.workload, *w2.workload, *sa, *sb);
      const double fix_det = scripted_slope(
          [&](std::int32_t p) { return make_lb_fix(d, p); }, 4, 8);
      table.add_row({"deterministic (worst-case ties)", fmt(current_det),
                     fmt(fix_det)});
    }
    double current_sum = 0;
    double fix_sum = 0;
    const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5};
    for (const auto seed : seeds) {
      RandomizedCurrent ca(seed);
      RandomizedCurrent cb(seed + 1000);
      auto w1 = make_lb_current(ell, 3);
      auto w2 = make_lb_current(ell, 6);
      current_sum += slope_on(*w1.workload, *w2.workload, ca, cb);
      RandomizedFix fa(seed);
      RandomizedFix fb(seed + 1000);
      auto v1 = make_lb_fix(d, 4);
      auto v2 = make_lb_fix(d, 8);
      fix_sum += slope_on(*v1.workload, *v2.workload, fa, fb);
    }
    table.add_row({"randomized ties (mean over seeds)",
                   fmt(current_sum / static_cast<double>(seeds.size())),
                   fmt(fix_sum / static_cast<double>(seeds.size()))});
    table.print(std::cout);
  }

  {
    AsciiTable table({"implementation", "adaptive universal (d=6)"});
    table.set_title("F-G  ... and on the ADAPTIVE adversary of Theorem 2.6");
    {
      auto sa = make_strategy("A_current");
      auto sb = make_strategy("A_current");
      UniversalAdversary u1(6, 4);
      UniversalAdversary u2(6, 8);
      table.add_row({"A_current deterministic",
                     fmt(slope_on(u1, u2, *sa, *sb))});
    }
    double sum = 0;
    const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5};
    for (const auto seed : seeds) {
      RandomizedCurrent ca(seed);
      RandomizedCurrent cb(seed + 1000);
      UniversalAdversary u1(6, 4);
      UniversalAdversary u2(6, 8);
      sum += slope_on(u1, u2, ca, cb);
    }
    table.add_row({"A_current randomized (mean)",
                   fmt(sum / static_cast<double>(seeds.size()))});
    table.print(std::cout);
    std::cout << "\nRandom ties dodge the fixed request sequences of\n"
                 "Theorems 2.1/2.2 (the adversary guessed the tie-breaks),\n"
                 "but the adaptive adversary re-aims every interval at\n"
                 "whatever the algorithm actually neglected — it keeps its\n"
                 "bite, exactly as Theorem 2.6's quantifier ordering\n"
                 "(adversary AFTER algorithm) predicts.\n";
  }
  return 0;
}
