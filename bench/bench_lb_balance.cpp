// Experiment E-2.5 — Theorem 2.5: A_balance vs the three-resource-group
// rotation, d = 3x - 1. Two series: (a) ratio vs d at a fixed group count,
// (b) convergence towards the n -> infinity bound (5d+2)/(4d+1) as the
// group count k grows (the shared S'/S'' maintenance dilutes at rate 1/k).
#include <cmath>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

namespace {
double finite_group_prediction(std::int32_t x, std::int32_t groups) {
  return static_cast<double>(groups * (5 * x - 1) + 4 * x) /
         static_cast<double>(groups * (4 * x - 1) + 4 * x);
}
}  // namespace

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto xs = args.get_int_list("x", {1, 2, 3, 4, 6});
  args.finish();

  {
    AsciiTable table({"x", "d=3x-1", "measured (k=8)", "finite-k model",
                      "(5d+2)/(4d+1) limit"});
    table.set_title("E-2.5a  A_balance on the Theorem 2.5 adversary vs d");
    for (const auto x64 : xs) {
      const auto x = static_cast<std::int32_t>(x64);
      const std::int32_t d = 3 * x - 1;
      const double measured = scripted_slope(
          [&](std::int32_t m) { return make_lb_balance(x, 8, m); }, 4, 8);
      table.add_row({std::to_string(x), std::to_string(d), fmt(measured),
                     fmt(finite_group_prediction(x, 8)),
                     fmt(lb_balance(d).to_double())});
    }
    table.print(std::cout);
  }

  {
    const std::int32_t x = 3;  // d = 8
    AsciiTable table({"groups k", "n=3k+2", "measured", "finite-k model",
                      "limit"});
    table.set_title("E-2.5b  convergence in the group count (d = 8)");
    for (const std::int32_t k : {1, 2, 4, 8, 16, 32}) {
      const double measured = scripted_slope(
          [&](std::int32_t m) { return make_lb_balance(x, k, m); }, 4, 8);
      table.add_row({std::to_string(k), std::to_string(3 * k + 2),
                     fmt(measured), fmt(finite_group_prediction(x, k)),
                     fmt(lb_balance(3 * x - 1).to_double())});
    }
    table.print(std::cout);
  }
  std::cout << "\nThe paper's n -> infinity is visible directly: the gap to\n"
               "(5d+2)/(4d+1) shrinks like 1/k because only the 4x shared\n"
               "maintenance requests per interval are ratio-neutral.\n";
  return 0;
}
