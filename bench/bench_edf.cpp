// Experiment E-3.1/3.2 — the EDF observations:
//  * with one alternative, EDF equals the offline optimum on every instance
//    (1-competitive, Observation 3.1);
//  * with two alternatives treated as independent copies, EDF is exactly
//    2-competitive: the tightness instance wastes half the slots on
//    duplicate service.
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "strategies/edf.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto seeds = args.get_int_list("seeds", {1, 2, 3, 4, 5, 6});
  args.finish();

  {
    AsciiTable table({"seed", "injected", "EDF fulfilled", "OPT", "ratio"});
    table.set_title("E-3.1  single-alternative EDF == OPT (Observation 3.1)");
    for (const auto seed : seeds) {
      UniformWorkload workload({.n = 5, .d = 4, .load = 1.6, .horizon = 120,
                                .seed = static_cast<std::uint64_t>(seed),
                                .two_choice = false});
      EdfSingle strategy;
      const RunResult r =
          run_experiment(workload, strategy, {.analyze_paths = false});
      REQSCHED_CHECK(r.optimum == r.metrics.fulfilled);
      table.add_row({std::to_string(seed), std::to_string(r.metrics.injected),
                     std::to_string(r.metrics.fulfilled),
                     std::to_string(r.optimum), fmt(r.ratio)});
    }
    table.print(std::cout);
  }

  {
    AsciiTable table({"d", "variant", "fulfilled", "wasted", "OPT", "ratio"});
    table.set_title(
        "E-3.2  two-choice EDF on its tightness instance (ratio exactly 2)");
    for (const std::int32_t d : {2, 4, 8, 16}) {
      for (const bool cancel : {false, true}) {
        auto instance = make_lb_edf(d, 8);
        EdfTwoChoice strategy(cancel);
        const RunResult r =
            run_experiment(*instance, strategy, {.analyze_paths = false});
        table.add_row({std::to_string(d), strategy.name(),
                       std::to_string(r.metrics.fulfilled),
                       std::to_string(r.metrics.wasted_executions),
                       std::to_string(r.optimum), fmt(r.ratio)});
      }
    }
    table.print(std::cout);
  }

  {
    AsciiTable table({"workload", "EDF_two_choice", "EDF cancel-copies",
                      "A_balance", "OPT"});
    table.set_title("E-3.2b  EDF vs the matching strategies on benign load");
    for (const auto seed : seeds) {
      const RandomWorkloadOptions base{
          .n = 6, .d = 4, .load = 1.5, .horizon = 100,
          .seed = static_cast<std::uint64_t>(seed), .two_choice = true};
      std::vector<std::string> row;
      row.push_back("uniform seed " + std::to_string(seed));
      std::int64_t opt = 0;
      for (const std::string& name :
           {std::string("EDF_two_choice"), std::string("EDF_two_choice_cancel"),
            std::string("A_balance")}) {
        UniformWorkload workload(base);
        auto strategy = make_strategy(name);
        const RunResult r =
            run_experiment(workload, *strategy, {.analyze_paths = false});
        row.push_back(std::to_string(r.metrics.fulfilled));
        opt = r.optimum;
      }
      row.push_back(std::to_string(opt));
      table.add_row(row);
    }
    table.print(std::cout);
  }
  std::cout << "\nIndependent-copy EDF burns slots on duplicate service;\n"
               "cancelling copies recovers most of the loss, but both stay\n"
               "2-competitive in the worst case — beating 2 requires the\n"
               "matching-based strategies of Table 1.\n";
  return 0;
}
