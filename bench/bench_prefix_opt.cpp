// F-J — the incremental prefix-optimum engine vs per-round from-scratch
// Hopcroft–Karp, plus the single-run slope-ratio observability it buys.
//
// The competitive definition quantifies over every prefix of the request
// sequence. Tracking OPT(sigma[0..t]) per round used to cost one full
// offline solve per round; the incremental engine pays one augmenting-path
// search per *arrival* instead. This bench measures both on the same long
// trace (from-scratch sampled at evenly spaced rounds and extrapolated),
// verifies they agree exactly wherever both are computed, and gates on the
// >= 10x speedup target at 10k-round traces.
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "engine/simulator.hpp"
#include "matching/bipartite.hpp"
#include "matching/incremental.hpp"
#include "offline/offline.hpp"
#include "strategies/scripted.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {
using namespace reqsched;

Trace make_long_trace(std::int32_t n, std::int32_t d, std::int64_t rounds,
                      double load) {
  UniformWorkload workload({.n = n, .d = d, .load = load, .horizon = rounds,
                            .seed = 42, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  sim.run(rounds + d + 16);
  return sim.trace();
}

struct IncrementalRun {
  std::vector<std::int64_t> per_round_opt;
  double total_ms = 0.0;
};

IncrementalRun run_incremental(const Trace& trace) {
  IncrementalRun out;
  const auto requests = trace.requests();
  const Round last = requests.empty() ? -1 : requests.back().arrival;
  out.per_round_opt.reserve(static_cast<std::size_t>(last + 1));
  Stopwatch sw;
  PrefixOptimumTracker tracker(trace.config());
  std::size_t cursor = 0;
  for (Round t = 0; t <= last; ++t) {
    while (cursor < requests.size() && requests[cursor].arrival == t) {
      tracker.add_request(requests[cursor]);
      ++cursor;
    }
    out.per_round_opt.push_back(tracker.optimum());
  }
  out.total_ms = sw.elapsed_ms();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using reqsched::bench::fmt;
  const CliArgs args(argc, argv);
  const auto rounds = args.get_int("rounds", 10'000);
  const auto n = static_cast<std::int32_t>(args.get_int("n", 8));
  const auto d = static_cast<std::int32_t>(args.get_int("d", 4));
  const auto samples = std::max<std::int64_t>(1, args.get_int("samples", 50));
  const double load = args.get_double("load", 1.2);
  args.finish();

  const Trace trace = make_long_trace(n, d, rounds, load);
  const Round last_arrival =
      trace.empty() ? -1 : trace.requests().back().arrival;
  const auto tracked_rounds = last_arrival + 1;

  // One pass, optimum read after every round.
  const IncrementalRun incremental = run_incremental(trace);

  // From-scratch Hopcroft–Karp on evenly spaced round prefixes; the mean
  // per-solve cost times the round count estimates what per-round tracking
  // would cost the old way. Every sampled value must match the incremental
  // engine exactly.
  const Round stride = std::max<Round>(1, tracked_rounds / samples);
  double scratch_sampled_ms = 0.0;
  std::int64_t sampled = 0;
  for (Round t = stride - 1; t < tracked_rounds; t += stride) {
    Trace prefix(trace.config());
    for (const Request& r : trace.requests()) {
      if (r.arrival > t) break;
      prefix.add(r.arrival,
                 RequestSpec{r.first(), r.second(),
                             static_cast<std::int32_t>(r.deadline - r.arrival +
                                                       1)});
    }
    Stopwatch sw;
    const OfflineGraph og(prefix);
    const Matching matching = hopcroft_karp(og.graph());
    scratch_sampled_ms += sw.elapsed_ms();
    ++sampled;
    REQSCHED_CHECK_MSG(
        matching.size() ==
            incremental.per_round_opt[static_cast<std::size_t>(t)],
        "incremental prefix optimum diverged from from-scratch HK at round "
            << t);
  }
  const double scratch_estimated_ms =
      scratch_sampled_ms / static_cast<double>(sampled) *
      static_cast<double>(tracked_rounds);
  const double speedup = scratch_estimated_ms / incremental.total_ms;

  AsciiTable table({"metric", "value"});
  table.set_title("F-J  incremental prefix optimum vs from-scratch HK");
  table.add_row({"rounds tracked", std::to_string(tracked_rounds)});
  table.add_row({"requests", std::to_string(trace.size())});
  table.add_row({"final OPT", std::to_string(
                                  incremental.per_round_opt.empty()
                                      ? 0
                                      : incremental.per_round_opt.back())});
  table.add_row({"incremental total (ms)", fmt(incremental.total_ms, 2)});
  table.add_row({"from-scratch sampled solves", std::to_string(sampled)});
  table.add_row(
      {"from-scratch est. total (ms)", fmt(scratch_estimated_ms, 2)});
  table.add_row({"speedup", fmt(speedup, 1) + "x"});
  table.print(std::cout);

  // Observability demo: one prefix-tracked run of the Theorem 2.1 instance
  // yields the slope ratio at every intermediate horizon — the quantity that
  // used to need a separate short run per horizon.
  const std::int32_t lb_d = 8;
  TheoremInstance instance = make_lb_fix(lb_d, 24);
  ScriptedStrategy scripted(instance.target, *instance.workload);
  const RunResult run =
      run_experiment(*instance.workload, scripted,
                     {.analyze_paths = false, .track_prefix = true});
  REQSCHED_CHECK(run.violations == 0);
  const auto horizon = static_cast<Round>(run.prefix_series.size()) - 1;
  const Round base = horizon / 8;
  AsciiTable slopes({"horizon (round)", "slope ratio", "2 - 1/d"});
  slopes.set_title("single-run slope ratios, A_fix vs Theorem 2.1 (d = 8)");
  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    const auto t = static_cast<Round>(static_cast<double>(horizon) * frac);
    slopes.add_row({std::to_string(t),
                    fmt(prefix_slope_ratio(run, base, t), 6),
                    fmt(lb_fix(lb_d).to_double(), 6)});
  }
  slopes.print(std::cout);

  if (tracked_rounds >= 10'000) {
    REQSCHED_CHECK_MSG(speedup >= 10.0,
                       "incremental engine must be >= 10x faster than "
                       "per-round from-scratch HK at 10k rounds; measured "
                           << speedup << "x");
    std::cout << "\nspeedup target (>= 10x at 10k rounds): met\n";
  }
  return 0;
}
