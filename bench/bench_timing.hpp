// Strategy-step instrumentation shared by the perf benches.
//
// StepTimer decorates a strategy and accumulates the wall-clock time spent
// inside on_round() — the strategy-step cost in isolation, excluding
// workload generation, injection, execution, and metrics bookkeeping that
// every run pays identically. The per-round samples feed the latency
// percentiles bench_stream reports.
#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "engine/simulator.hpp"
#include "core/strategy.hpp"

namespace reqsched::bench {

class StepTimer final : public IStrategy {
 public:
  explicit StepTimer(std::unique_ptr<IStrategy> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  void reset(const ProblemConfig& config) override {
    inner_->reset(config);
    total_seconds_ = 0.0;
    samples_.clear();
  }
  bool wants_window_problem() const override {
    return inner_->wants_window_problem();
  }

  void on_round(Simulator& sim) override {
    const auto t0 = std::chrono::steady_clock::now();
    inner_->on_round(sim);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    total_seconds_ += seconds;
    samples_.push_back(seconds);
  }

  /// Cumulative seconds spent in the inner strategy's on_round().
  double total_seconds() const { return total_seconds_; }
  /// One wall-clock sample per round, in order.
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::unique_ptr<IStrategy> inner_;
  double total_seconds_ = 0.0;
  std::vector<double> samples_;
};

/// The q-th percentile (q in [0, 1]) of `samples` by nth_element; 0 when
/// empty. Takes a copy — callers keep their sample order.
inline double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::ptrdiff_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  const auto nth = samples.begin() + rank;
  std::nth_element(samples.begin(), nth, samples.end());
  return *nth;
}

/// Peak resident set size of this process, in bytes (Linux ru_maxrss is in
/// kilobytes). 0 if the query fails.
inline std::size_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024u;
}

}  // namespace reqsched::bench
