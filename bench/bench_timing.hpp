// Strategy-step instrumentation shared by the perf benches.
//
// StepTimer decorates a strategy and accumulates the wall-clock time spent
// inside on_round() — the strategy-step cost in isolation, excluding
// workload generation, injection, execution, and metrics bookkeeping that
// every run pays identically. Per-round samples feed the latency
// percentiles bench_stream reports; they are kept in a bounded reservoir
// (uniform over all rounds seen) so a multi-million-round soak cannot
// breach the engine's own window-memory guarantee through its instruments.
#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "engine/simulator.hpp"
#include "core/strategy.hpp"

namespace reqsched::bench {

class StepTimer final : public IStrategy {
 public:
  /// `capacity` bounds the resident sample count; 4096 keeps p50/p99 within
  /// ~1% of exact for the distributions the benches see.
  explicit StepTimer(std::unique_ptr<IStrategy> inner,
                     std::size_t capacity = 4096)
      : inner_(std::move(inner)), capacity_(capacity) {}

  std::string name() const override { return inner_->name(); }
  void reset(const ProblemConfig& config) override {
    inner_->reset(config);
    total_seconds_ = 0.0;
    count_ = 0;
    rng_state_ = 0x9e3779b97f4a7c15ull;
    samples_.clear();
  }
  bool wants_window_problem() const override {
    return inner_->wants_window_problem();
  }
  bool wants_admission_fast_path() const override {
    return inner_->wants_admission_fast_path();
  }

  void on_round(Simulator& sim) override {
    const auto t0 = std::chrono::steady_clock::now();
    inner_->on_round(sim);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    total_seconds_ += seconds;
    record(seconds);
  }

  /// Cumulative seconds spent in the inner strategy's on_round().
  double total_seconds() const { return total_seconds_; }
  /// Rounds timed (may exceed samples().size() once the reservoir is full).
  std::uint64_t count() const { return count_; }
  /// The reservoir: a uniform sample of the per-round times seen so far
  /// (every round while count() <= capacity, Algorithm R afterwards).
  const std::vector<double>& samples() const { return samples_; }

 private:
  /// Vitter's Algorithm R with a deterministic splitmix64 stream — bounded
  /// memory, uniform over all rounds, reproducible run-to-run.
  void record(double seconds) {
    ++count_;
    if (samples_.size() < capacity_) {
      samples_.push_back(seconds);
      return;
    }
    const std::uint64_t j = next_random() % count_;
    if (j < capacity_) samples_[static_cast<std::size_t>(j)] = seconds;
  }

  std::uint64_t next_random() {
    std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::unique_ptr<IStrategy> inner_;
  std::size_t capacity_;
  double total_seconds_ = 0.0;
  std::uint64_t count_ = 0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  std::vector<double> samples_;
};

/// The q-th percentile (q in [0, 1]) of `samples`, linearly interpolated
/// between the two nearest order statistics (the common "type 7" estimator)
/// — nearest-rank rounding collapsed p99 to the max for small sample counts.
/// NaN when empty: an empty run must not report a fake 0 latency, and
/// callers gate on it. Takes a copy — callers keep their sample order.
inline double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  return samples[lo] +
         (samples[hi] - samples[lo]) * (pos - static_cast<double>(lo));
}

/// Peak resident set size of this process, in bytes. Linux reports
/// ru_maxrss in kilobytes, macOS in bytes — scaling unconditionally made
/// the memory-plateau gate 1024x too lax off-Linux.
inline std::size_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024u;
#endif
}

}  // namespace reqsched::bench
