// Experiment E-2.3 — Theorem 2.3: A_fix_balance vs the switching-pair
// construction on six resources. No scripted tie-breaking is needed: the
// balance rule itself walks into the trap. Series over even d against
// 3d/(2d+2).
#include <cmath>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto ds = args.get_int_list("d", {4, 6, 8, 12, 16, 24, 32});
  args.finish();

  AsciiTable table({"d", "measured", "3d/(2d+2)", "abs err"});
  table.set_title("E-2.3  A_fix_balance on the Theorem 2.3 adversary");
  for (const auto d64 : ds) {
    const auto d = static_cast<std::int32_t>(d64);
    const double measured = reference_slope(
        [&](std::int32_t p) {
          return std::move(make_lb_fix_balance(d, p).workload);
        },
        "A_fix_balance", 4, 8);
    const double theory = Fraction(3 * d, 2 * d + 2).to_double();
    table.add_row({std::to_string(d), fmt(measured), fmt(theory),
                   fmt(std::abs(measured - theory), 10)});
  }
  table.print(std::cout);
  std::cout << "\nThe balancing function F spreads the bait requests onto\n"
               "the empty pair exactly one round before the block lands\n"
               "there; without rescheduling, d - 2 block requests are lost\n"
               "per phase.\n";
  return 0;
}
