// Streaming-engine gates: the numbers that justify the bounded-memory
// runtime. Five gated sections, each REQSCHED_CHECK'd so CI fails loudly:
//
//  * soak — a 1M+ request stream (n = 8, d = 3, overload) through a
//    recycling pool. Hard cap: peak resident requests <= admissions-per-
//    round * d (the window bound), i.e. O(n*d) here, independent of the
//    stream length.
//  * memory plateau — the same stream at 4x the horizon must not grow the
//    resident estimate by more than 2x (+ fixed slack): state is windowed,
//    not accumulated. Checked with live-OPT tracking on, which is the part
//    that would silently go linear without closure pruning + dead marking.
//  * tracking overhead — the overloaded soak's requests/sec with and
//    without ratio tracking, sanity-floored at 50k to catch collapse (the
//    untracked-throughput floor proper is the stream section's 150k gate;
//    both deliberately conservative — CI machines vary, the point is to
//    catch order-of-magnitude regressions, not 10% noise).
//  * exactness — the live ratio monitor's OPT equals the offline
//    Hopcroft–Karp solve of the recorded trace, on every seed tried.
//  * stream — the admission-fast-path headline: an A_fix stream at
//    sub-critical load with the engine's batch-admission stage on, gated
//    metric-identical to the matcher-only run and to a >= 150k req/s
//    untracked-throughput floor, with per-round step-latency p50/p99.
//  * checkpoint — the overloaded soak interrupted at its midpoint,
//    checkpointed through the full file cycle (encode + atomic save, load +
//    restore), and continued: final Metrics and state digest must be
//    bit-identical to the uninterrupted run. Reports write/restore latency
//    and checkpoint size, plus the embedded manifest's provenance fields as
//    text records.
//  * stationary — the open-loop long-horizon gates: Poisson generator
//    throughput floor; a 10^8-request rho-controlled soak (smoke: ~10^6)
//    emitting StatsFrames the whole way under a hard O(1) stats-memory
//    bound, with the streaming cumulative counters pinned to the exact
//    Metrics; checkpoint/restore mid-soak with the statistics layer on,
//    gated on identical state digest AND byte-identical frame suffix; and a
//    loss-rate-vs-rho sweep (recorded, monotonicity-gated) — the curve
//    EXPERIMENTS.md compares against the stationary-analysis references.
//
// Usage: bench_stream [--smoke] [--json=BENCH_stream.json]
//                     [--json-append=BENCH_latest.json]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "adversary/openloop.hpp"
#include "adversary/random.hpp"
#include "analysis/registry.hpp"
#include "bench_json.hpp"
#include "bench_timing.hpp"
#include "engine/simulator.hpp"
#include "engine/sharded.hpp"
#include "offline/offline.hpp"
#include "snapshot/checkpoint.hpp"
#include "util/cli.hpp"

namespace reqsched {
namespace {

struct StreamConfig {
  const char* strategy = "A_balance";
  std::int32_t n = 8;
  std::int32_t d = 3;
  double load = 2.0;
  bool track_opt = false;
  bool fast_path = true;  ///< EngineOptions::admission_fast_path
};

struct StreamPoint {
  Metrics metrics;
  double seconds = 0.0;
  std::int64_t peak_live = 0;
  std::int64_t max_per_round = 0;
  std::int64_t slab_capacity = 0;
  std::size_t resident_bytes = 0;
  std::int64_t fast_admitted = 0;
  std::int64_t fast_fallbacks = 0;
  /// Per-round strategy-step latency percentiles, seconds (NaN when the run
  /// produced no samples — callers gate before reporting).
  double step_p50 = 0.0;
  double step_p90 = 0.0;
  double step_p99 = 0.0;

  double requests_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(metrics.injected) / seconds
                         : 0.0;
  }
};

StreamPoint run_stream(Round horizon, const StreamConfig& cfg) {
  UniformWorkload workload({.n = cfg.n, .d = cfg.d, .load = cfg.load,
                            .horizon = horizon, .seed = 11,
                            .two_choice = true});
  bench::StepTimer strategy(make_strategy(cfg.strategy));
  EngineOptions options = streaming_options();
  options.track_live_opt = cfg.track_opt;
  options.admission_fast_path = cfg.fast_path;
  Simulator sim(workload, strategy, std::move(options));

  StreamPoint point;
  const auto t0 = std::chrono::steady_clock::now();
  point.metrics = sim.run(4 * horizon + 16);
  const auto t1 = std::chrono::steady_clock::now();
  point.seconds = std::chrono::duration<double>(t1 - t0).count();
  const RequestPool& pool = sim.engine().pool();
  point.peak_live = pool.peak_live();
  point.max_per_round = pool.max_admitted_per_round();
  point.slab_capacity = pool.slab_capacity();
  point.resident_bytes = sim.engine().approx_resident_bytes();
  point.fast_admitted = sim.engine().fast_path_admitted();
  point.fast_fallbacks = sim.engine().fast_path_fallbacks();
  point.step_p50 = bench::percentile(strategy.samples(), 0.50);
  point.step_p90 = bench::percentile(strategy.samples(), 0.90);
  point.step_p99 = bench::percentile(strategy.samples(), 0.99);
  // An empty-sample run would report NaN percentiles; every gated stream
  // here runs thousands of rounds, so finite is an invariant worth pinning.
  REQSCHED_CHECK_MSG(std::isfinite(point.step_p50) &&
                         std::isfinite(point.step_p99),
                     "stream produced no latency samples");
  return point;
}

void run_soak_and_throughput(bool smoke, bench::JsonWriter& json) {
  const Round horizon = smoke ? 8'000 : 70'000;
  const StreamPoint plain = run_stream(horizon, {.track_opt = false});
  const StreamPoint tracked = run_stream(horizon, {.track_opt = true});

  if (!smoke) {
    REQSCHED_CHECK_MSG(plain.metrics.injected >= 1'000'000,
                       "soak stream too short: " << plain.metrics.injected);
  }
  // The window bound, asserted hard: resident requests never exceeded one
  // deadline window of admissions.
  REQSCHED_CHECK_MSG(plain.peak_live <= plain.max_per_round * 3,
                     "peak resident " << plain.peak_live
                                      << " exceeds the window bound "
                                      << plain.max_per_round * 3);
  REQSCHED_CHECK_MSG(plain.slab_capacity == plain.peak_live,
                     "slab grew past the live peak");

  std::printf(
      "[bench_stream] soak: %lld requests, %lld rounds; peak resident %lld "
      "(<= %lld admissions/round * d = %lld)\n",
      static_cast<long long>(plain.metrics.injected),
      static_cast<long long>(plain.metrics.rounds),
      static_cast<long long>(plain.peak_live),
      static_cast<long long>(plain.max_per_round),
      static_cast<long long>(plain.max_per_round * 3));
  // Overloaded A_balance is the worst case the engine carries (constant
  // rebalancing, no fast path possible at load 2.0): a 50k sanity floor
  // catches collapse. The repo's untracked-throughput floor proper is the
  // 150k gate in run_fast_path_stream.
  std::printf(
      "[bench_stream] tracking overhead: %.0f req/s untracked, %.0f req/s "
      "with live-ratio tracking (overloaded soak; sanity floor 50000)\n",
      plain.requests_per_sec(), tracked.requests_per_sec());
  REQSCHED_CHECK_MSG(plain.requests_per_sec() >= 50'000.0,
                     "streaming throughput collapsed: "
                         << plain.requests_per_sec() << " req/s");

  json.record("soak", "injected_requests",
              static_cast<double>(plain.metrics.injected), "requests");
  json.record("soak", "peak_resident_requests",
              static_cast<double>(plain.peak_live), "requests");
  json.record("soak", "window_bound",
              static_cast<double>(plain.max_per_round * 3), "requests");
  json.record("throughput", "untracked", plain.requests_per_sec(),
              "requests/sec");
  json.record("throughput", "tracked", tracked.requests_per_sec(),
              "requests/sec");

  // Per-round strategy-step latency: the tail is what a deadline-driven
  // deployment cares about, not the mean the throughput line hides.
  std::printf(
      "[bench_stream] strategy-step latency per round: p50 %.1f us, "
      "p90 %.1f us, p99 %.1f us\n",
      plain.step_p50 * 1e6, plain.step_p90 * 1e6, plain.step_p99 * 1e6);
  json.record("latency", "step_p50", plain.step_p50 * 1e6, "us");
  json.record("latency", "step_p90", plain.step_p90 * 1e6, "us");
  json.record("latency", "step_p99", plain.step_p99 * 1e6, "us");

  const std::size_t rss = bench::peak_rss_bytes();
  std::printf("[bench_stream] peak RSS: %.1f MiB\n",
              static_cast<double>(rss) / (1024.0 * 1024.0));
  json.record("memory", "peak_rss", static_cast<double>(rss), "bytes");
}

void run_memory_plateau(bool smoke, bench::JsonWriter& json) {
  const Round base = smoke ? 2'000 : 10'000;
  const StreamPoint short_run = run_stream(base, {.track_opt = true});
  const StreamPoint long_run = run_stream(4 * base, {.track_opt = true});
  const auto limit = 2 * short_run.resident_bytes + (64u << 10);
  std::printf(
      "[bench_stream] memory plateau: %zu bytes at %lld rounds, %zu bytes "
      "at %lld rounds (limit %zu)\n",
      short_run.resident_bytes, static_cast<long long>(base),
      long_run.resident_bytes, static_cast<long long>(4 * base), limit);
  REQSCHED_CHECK_MSG(long_run.resident_bytes <= limit,
                     "resident estimate grows with the horizon: "
                         << short_run.resident_bytes << " -> "
                         << long_run.resident_bytes);
  json.record("memory", "resident_bytes_1x",
              static_cast<double>(short_run.resident_bytes), "bytes");
  json.record("memory", "resident_bytes_4x",
              static_cast<double>(long_run.resident_bytes), "bytes");
}

void run_ratio_exactness(bool smoke, bench::JsonWriter& json) {
  // The live monitor must be the *exact* OPT, not an approximation: record
  // the trace alongside the stream and re-solve it offline.
  const Round horizon = smoke ? 200 : 600;
  int checked = 0;
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    UniformWorkload workload({.n = 6, .d = 4, .load = 1.7, .horizon = horizon,
                              .seed = seed, .two_choice = true});
    auto strategy = make_strategy("A_fix");
    EngineOptions options = streaming_options();
    options.record_trace = true;
    options.track_live_opt = true;
    options.opt_prune_every = 8;
    Simulator sim(workload, *strategy, std::move(options));
    sim.run();
    const std::int64_t live = sim.engine().live_optimum();
    const std::int64_t offline = offline_optimum(sim.trace());
    REQSCHED_CHECK_MSG(live == offline, "live OPT " << live
                                                    << " != offline "
                                                    << offline << " at seed "
                                                    << seed);
    ++checked;
  }
  std::printf(
      "[bench_stream] ratio exactness: live OPT == offline solve on %d "
      "streams\n",
      checked);
  json.record("exactness", "streams_verified", checked, "streams");
}

void run_fast_path_stream(bool smoke, bench::JsonWriter& json) {
  // The batched round loop's headline number: A_fix at sub-critical load,
  // where almost every batch is uncontended and the admission fast path
  // books slots without touching the Kuhn matcher. Two gates:
  //  1. correctness — the run with the fast path disabled (matcher-only on
  //     every batch) must produce bit-identical Metrics, the same invariant
  //     the frozen differential traces pin in tests/test_fast_path.cpp;
  //  2. throughput — the untracked floor is 150k req/s, 3x the matcher-era
  //     50k floor, still conservative against CI machine variance.
  const Round horizon = smoke ? 8'000 : 70'000;
  // Sub-critical load (rho < 1) so the backlog drains, spread over enough
  // resources that same-first-choice collisions inside one batch stay rare
  // (a collision forces the matcher fallback: Kuhn would augment where
  // greedy cannot). d = 16 deepens the window, which is exactly the problem-
  // construction cost each admitted round skips.
  const StreamConfig on_cfg{.strategy = "A_fix", .n = 32, .d = 16,
                            .load = 0.15, .track_opt = false,
                            .fast_path = true};
  StreamConfig off_cfg = on_cfg;
  off_cfg.fast_path = false;
  const StreamPoint on = run_stream(horizon, on_cfg);
  const StreamPoint off = run_stream(horizon, off_cfg);

  REQSCHED_CHECK_MSG(on.metrics == off.metrics,
                     "admission fast path diverged from the matcher-only "
                     "run on the stream workload");
  REQSCHED_CHECK_MSG(off.fast_admitted == 0 && off.fast_fallbacks == 0,
                     "fast-path counters moved with the fast path disabled");
  // Sub-critical load is the regime the fast path exists for: most rounds
  // must actually take it, or the headline measures the fallback.
  REQSCHED_CHECK_MSG(on.fast_admitted > 0,
                     "fast path admitted nothing at sub-critical load");

  std::printf(
      "[bench_stream] stream (A_fix, n=32, d=16, load 0.15): %.0f req/s "
      "fast-path, "
      "%.0f req/s matcher-only (floor 150000); %lld fast-admitted, "
      "%lld fallback rounds\n",
      on.requests_per_sec(), off.requests_per_sec(),
      static_cast<long long>(on.fast_admitted),
      static_cast<long long>(on.fast_fallbacks));
  std::printf(
      "[bench_stream] stream step latency per round: p50 %.2f us, "
      "p99 %.2f us fast-path; p50 %.2f us, p99 %.2f us matcher-only\n",
      on.step_p50 * 1e6, on.step_p99 * 1e6, off.step_p50 * 1e6,
      off.step_p99 * 1e6);
  REQSCHED_CHECK_MSG(on.requests_per_sec() >= 150'000.0,
                     "fast-path streaming throughput collapsed: "
                         << on.requests_per_sec() << " req/s");

  json.record("stream", "untracked", on.requests_per_sec(), "requests/sec");
  json.record("stream", "matcher_only", off.requests_per_sec(),
              "requests/sec");
  json.record("stream", "step_p50", on.step_p50 * 1e6, "us");
  json.record("stream", "step_p99", on.step_p99 * 1e6, "us");
  json.record("stream", "matcher_only_step_p50", off.step_p50 * 1e6, "us");
  json.record("stream", "matcher_only_step_p99", off.step_p99 * 1e6, "us");
  json.record("stream", "fast_path_admitted",
              static_cast<double>(on.fast_admitted), "requests");
  json.record("stream", "fast_path_fallbacks",
              static_cast<double>(on.fast_fallbacks), "rounds");
}

void run_checkpoint_gate(bool smoke, bench::JsonWriter& json) {
  // The soak workload again (1M+ requests full, overload, A_balance — the
  // densest state the engine carries), interrupted at the midpoint and
  // round-tripped through the complete file cycle. The gate is bit-identity:
  // the continued run must end with the same Metrics and the same state
  // digest as the run that was never interrupted.
  const Round horizon = smoke ? 8'000 : 70'000;
  const RandomWorkloadOptions opts{.n = 8, .d = 3, .load = 2.0,
                                   .horizon = horizon, .seed = 11,
                                   .two_choice = true};

  UniformWorkload ref_workload(opts);
  auto ref_strategy = make_strategy("A_balance");
  Simulator ref(ref_workload, *ref_strategy, streaming_options());
  ref.run(4 * horizon + 16);
  const Metrics ref_metrics = ref.metrics();
  const std::uint64_t ref_digest = state_digest(ref.engine());

  UniformWorkload cut_workload(opts);
  auto cut_strategy = make_strategy("A_balance");
  Simulator cut(cut_workload, *cut_strategy, streaming_options());
  while (cut.metrics().rounds < horizon / 2 && cut.step()) {
  }

  CheckpointManifest manifest;
  manifest.strategy_name = "A_balance";
  manifest.workload_family = "uniform";
  manifest.workload = opts;
  const std::string path = "BENCH_checkpoint.ckpt";
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::uint8_t> bytes =
      CheckpointManager::encode(cut.engine(), manifest);
  CheckpointManager::save_file(path, bytes);
  const auto t1 = std::chrono::steady_clock::now();
  const std::vector<std::uint8_t> loaded = CheckpointManager::load_file(path);
  std::remove(path.c_str());

  UniformWorkload res_workload(opts);
  auto res_strategy = make_strategy("A_balance");
  Simulator res(res_workload, *res_strategy, streaming_options());
  const auto t2 = std::chrono::steady_clock::now();
  const CheckpointManifest at =
      CheckpointManager::restore(loaded, res.engine());
  const auto t3 = std::chrono::steady_clock::now();
  res.run(4 * horizon + 16);

  REQSCHED_CHECK_MSG(res.metrics() == ref_metrics,
                     "checkpointed run diverged from the uninterrupted run");
  REQSCHED_CHECK_MSG(state_digest(res.engine()) == ref_digest,
                     "checkpointed run ended in a different engine state");

  const double write_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double restore_ms =
      std::chrono::duration<double, std::milli>(t3 - t2).count();
  std::printf(
      "[bench_stream] checkpoint: bit-identical continuation from round "
      "%lld (%lld requests); %zu bytes, write %.2f ms, restore %.2f ms\n",
      static_cast<long long>(at.round),
      static_cast<long long>(ref_metrics.injected), bytes.size(), write_ms,
      restore_ms);
  json.record("checkpoint", "size", static_cast<double>(bytes.size()),
              "bytes");
  json.record("checkpoint", "write_latency", write_ms, "ms");
  json.record("checkpoint", "restore_latency", restore_ms, "ms");
  json.record("checkpoint", "round", static_cast<double>(at.round), "rounds");
  json.record_text("manifest", "strategy", at.strategy_name);
  json.record_text("manifest", "workload", at.workload_family);
  json.record_text("manifest", "git_describe", at.git_describe);
  {
    std::ostringstream digest;
    digest << std::hex << at.trace_digest;
    json.record_text("manifest", "trace_digest", digest.str());
  }
}

void run_stationary_gate(bool smoke, bench::JsonWriter& json) {
  // ---- generator throughput: arrivals must be cheap relative to the
  // engine, or rho-controlled soaks measure the adversary, not the
  // scheduler. The floor is deliberately conservative (CI variance).
  {
    const Round gen_rounds = smoke ? 20'000 : 200'000;
    OpenLoopWorkload gen({.n = 64, .d = 8, .rho = 0.9, .horizon = gen_rounds,
                          .seed = 7},
                         "poisson");
    auto probe_strategy = make_strategy("A_fix");
    Simulator probe(gen, *probe_strategy);  // only the const ref generate needs
    std::vector<RequestSpec> out;
    std::int64_t arrivals = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (Round t = 0; t < gen_rounds; ++t) {
      out.clear();
      gen.generate(t, probe, out);
      arrivals += static_cast<std::int64_t>(out.size());
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double rate =
        seconds > 0.0 ? static_cast<double>(arrivals) / seconds : 0.0;
    std::printf(
        "[bench_stream] stationary generator: %lld Poisson arrivals in "
        "%.3f s -> %.0f arrivals/s (floor 500000)\n",
        static_cast<long long>(arrivals), seconds, rate);
    if (!smoke) {
      REQSCHED_CHECK_MSG(rate >= 500'000.0,
                         "open-loop generation collapsed: " << rate
                                                            << " arrivals/s");
    }
    json.record("stationary", "generator_rate", rate, "arrivals/sec");
  }

  // ---- the soak: rho = 0.55 keeps A_fix sub-critical (fast-path regime)
  // at ~35 arrivals/round, so 2.9M rounds carries ~10^8 requests. Frames
  // flow to a sink the whole way; the gates are the tentpole's claims:
  //  1. the statistics layer's memory is O(window + sketch), not O(stream);
  //  2. its cumulative counters equal the exact Metrics at every frame we
  //     check (here: the last), i.e. streaming loses nothing;
  //  3. the pool still honors the window bound with the layer on.
  const Round soak_rounds = smoke ? 30'000 : 2'900'000;
  const Round frame_every = 4'096;
  OpenLoopOptions soak_opts{.n = 64, .d = 8, .rho = 0.55,
                            .horizon = soak_rounds, .seed = 11};
  OpenLoopWorkload soak_workload(soak_opts, "poisson");
  auto soak_strategy = make_strategy("A_fix");
  EngineOptions soak_engine = streaming_options();
  soak_engine.track_stream_stats = true;
  soak_engine.frame_every = frame_every;
  std::int64_t frames = 0;
  StatsFrame last_frame;
  soak_engine.frame_sink = [&](const StatsFrame& frame) {
    ++frames;
    last_frame = frame;
  };
  Simulator soak(soak_workload, *soak_strategy, std::move(soak_engine));
  const auto s0 = std::chrono::steady_clock::now();
  const Metrics soak_metrics = soak.run(4 * soak_rounds + 16);
  const auto s1 = std::chrono::steady_clock::now();
  const double soak_seconds = std::chrono::duration<double>(s1 - s0).count();

  if (!smoke) {
    REQSCHED_CHECK_MSG(soak_metrics.injected >= 100'000'000,
                       "stationary soak too short: " << soak_metrics.injected);
  }
  REQSCHED_CHECK_MSG(frames >= soak_metrics.rounds / frame_every,
                     "frame emission stalled: " << frames << " frames over "
                                                << soak_metrics.rounds
                                                << " rounds");
  const std::size_t stats_bytes = soak.engine().stream_stats().approx_bytes();
  REQSCHED_CHECK_MSG(stats_bytes <= (2u << 20),
                     "streaming statistics grew past the window bound: "
                         << stats_bytes << " bytes");
  const StatsFrame final_frame = soak.engine().stats_frame();
  REQSCHED_CHECK_MSG(final_frame.injected == soak_metrics.injected &&
                         final_frame.fulfilled == soak_metrics.fulfilled &&
                         final_frame.expired == soak_metrics.expired,
                     "streaming cumulative counters diverged from Metrics");
  const RequestPool& soak_pool = soak.engine().pool();
  REQSCHED_CHECK_MSG(
      soak_pool.peak_live() <= soak_pool.max_admitted_per_round() * 8,
      "stationary soak broke the window bound");

  std::printf(
      "[bench_stream] stationary soak (poisson, n=64, d=8, rho=0.55, A_fix): "
      "%lld requests, %lld rounds, %.1f s -> %.0f req/s; %lld frames, "
      "stats %zu bytes; loss %.4f (window %.4f), tardiness p50/p99 "
      "%.1f/%.1f rounds\n",
      static_cast<long long>(soak_metrics.injected),
      static_cast<long long>(soak_metrics.rounds), soak_seconds,
      soak_seconds > 0.0
          ? static_cast<double>(soak_metrics.injected) / soak_seconds
          : 0.0,
      static_cast<long long>(frames), stats_bytes, final_frame.loss_rate,
      final_frame.w_loss_rate, final_frame.tardiness_p50,
      final_frame.tardiness_p99);
  json.record("stationary", "soak_requests",
              static_cast<double>(soak_metrics.injected), "requests");
  json.record("stationary", "soak_frames", static_cast<double>(frames),
              "frames");
  json.record("stationary", "stats_bytes", static_cast<double>(stats_bytes),
              "bytes");
  json.record("stationary", "soak_loss_rate", final_frame.loss_rate, "ratio");
  json.record("stationary", "soak_tardiness_p99", final_frame.tardiness_p99,
              "rounds");

  // ---- checkpoint bit-identity with the statistics layer ON: the sketches,
  // ring, and panes all ride the snapshot. The gate is stronger than digest
  // equality — every frame emitted after the cut must be byte-identical to
  // the frame the uninterrupted run emitted at the same round.
  {
    const Round horizon = smoke ? 6'000 : 40'000;
    const Round fe = 1'024;
    const OpenLoopOptions opts{.n = 16, .d = 6, .rho = 0.95,
                               .horizon = horizon, .seed = 23};
    const auto engine_opts = [&](std::vector<std::string>* sink) {
      EngineOptions eo = streaming_options();
      eo.track_stream_stats = true;
      eo.frame_every = fe;
      if (sink != nullptr) {
        eo.frame_sink = [sink](const StatsFrame& frame) {
          sink->push_back(to_jsonl(frame));
        };
      }
      return eo;
    };

    std::vector<std::string> ref_frames;
    OpenLoopWorkload ref_workload(opts, "poisson");
    auto ref_strategy = make_strategy("A_fix");
    Simulator ref(ref_workload, *ref_strategy, engine_opts(&ref_frames));
    ref.run(4 * horizon + 16);
    const std::uint64_t ref_digest = state_digest(ref.engine());

    OpenLoopWorkload cut_workload(opts, "poisson");
    auto cut_strategy = make_strategy("A_fix");
    Simulator cut(cut_workload, *cut_strategy, engine_opts(nullptr));
    while (cut.metrics().rounds < horizon / 2 && cut.step()) {
    }
    CheckpointManifest manifest;
    manifest.strategy_name = "A_fix";
    manifest.workload_family = "poisson";
    manifest.openloop = opts;
    const std::vector<std::uint8_t> bytes =
        CheckpointManager::encode(cut.engine(), manifest);

    std::vector<std::string> res_frames;
    OpenLoopWorkload res_workload(opts, "poisson");
    auto res_strategy = make_strategy("A_fix");
    Simulator res(res_workload, *res_strategy, engine_opts(&res_frames));
    const CheckpointManifest at = CheckpointManager::restore(bytes, res.engine());
    res.run(4 * horizon + 16);

    REQSCHED_CHECK_MSG(res.metrics() == ref.metrics(),
                       "stationary checkpoint run diverged in Metrics");
    REQSCHED_CHECK_MSG(state_digest(res.engine()) == ref_digest,
                       "stationary checkpoint run diverged in state digest");
    REQSCHED_CHECK_MSG(res_frames.size() <= ref_frames.size(),
                       "resumed run emitted more frames than the reference");
    const std::size_t skip = ref_frames.size() - res_frames.size();
    for (std::size_t i = 0; i < res_frames.size(); ++i) {
      REQSCHED_CHECK_MSG(res_frames[i] == ref_frames[skip + i],
                         "frame " << i << " after restore differs from the "
                                  << "uninterrupted run");
    }
    std::printf(
        "[bench_stream] stationary checkpoint: restored at round %lld with "
        "stats on; %zu post-cut frames byte-identical, digest match\n",
        static_cast<long long>(at.round), res_frames.size());
    json.record("stationary", "checkpoint_frames_verified",
                static_cast<double>(res_frames.size()), "frames");
  }

  // ---- loss-rate vs rho: the stationary curve. Loss must be near zero
  // well below saturation and grow monotonically (small tolerance for
  // seed noise) through and past rho = 1 — the qualitative shape the
  // stationary references predict for greedy d-choice service.
  {
    const Round horizon = smoke ? 4'000 : 40'000;
    const double rhos[] = {0.6, 0.8, 0.9, 0.95, 1.0, 1.1};
    double prev = -1.0;
    double first = 0.0;
    double last = 0.0;
    for (const double rho : rhos) {
      OpenLoopWorkload workload({.n = 32, .d = 8, .rho = rho,
                                 .horizon = horizon, .seed = 31},
                                "poisson");
      auto strategy = make_strategy("A_fix");
      EngineOptions eo = streaming_options();
      eo.track_stream_stats = true;
      Simulator sim(workload, *strategy, std::move(eo));
      sim.run(4 * horizon + 16);
      const StatsFrame frame = sim.engine().stats_frame();
      std::printf(
          "[bench_stream] stationary rho %.2f: loss %.4f, tardiness p50/p99 "
          "%.1f/%.1f\n",
          rho, frame.loss_rate, frame.tardiness_p50, frame.tardiness_p99);
      {
        char label[32];
        std::snprintf(label, sizeof label, "loss_rho_%.2f", rho);
        json.record("stationary", label, frame.loss_rate, "ratio");
      }
      REQSCHED_CHECK_MSG(frame.loss_rate >= prev - 0.02,
                         "loss rate not monotone in rho near " << rho);
      prev = frame.loss_rate;
      if (rho == rhos[0]) first = frame.loss_rate;
      last = frame.loss_rate;
    }
    REQSCHED_CHECK_MSG(first < 0.05,
                       "sub-critical loss rate too high: " << first);
    REQSCHED_CHECK_MSG(last > first + 0.05,
                       "loss rate failed to grow past saturation");
  }
}

void run_sharded_point(bool smoke, bench::JsonWriter& json) {
  ShardedRunOptions options;
  options.shards = smoke ? 4 : 8;
  options.threads = 4;
  options.engine.track_live_opt = true;
  const Round horizon = smoke ? 2'000 : 8'000;
  const auto t0 = std::chrono::steady_clock::now();
  const ShardedResult result = run_sharded(
      options,
      [horizon](std::int64_t shard) {
        return std::make_unique<UniformWorkload>(RandomWorkloadOptions{
            .n = 8, .d = 3, .load = 1.8, .horizon = horizon,
            .seed = 40 + static_cast<std::uint64_t>(shard),
            .two_choice = true});
      },
      [](std::int64_t) { return make_strategy("A_balance"); });
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  REQSCHED_CHECK_MSG(result.all_ok(), result.failed << " shards failed");
  const double rate =
      seconds > 0.0 ? static_cast<double>(result.total.injected) / seconds
                    : 0.0;
  std::printf(
      "[bench_stream] sharded: %lld shards, %lld requests in %.3f s -> "
      "%.0f req/s aggregate\n",
      static_cast<long long>(options.shards),
      static_cast<long long>(result.total.injected), seconds, rate);
  json.record("sharded", "aggregate", rate, "requests/sec");
}

}  // namespace
}  // namespace reqsched

int main(int argc, char** argv) {
  using namespace reqsched;
  const CliArgs args(argc, argv);
  try {
    const bool smoke = args.get_bool("smoke", false);
    const std::string json_path = args.get_string("json", "");
    const std::string json_append_path = args.get_string("json-append", "");
    args.finish();

    bench::JsonWriter json;
    run_soak_and_throughput(smoke, json);
    run_fast_path_stream(smoke, json);
    run_memory_plateau(smoke, json);
    run_ratio_exactness(smoke, json);
    run_checkpoint_gate(smoke, json);
    run_stationary_gate(smoke, json);
    run_sharded_point(smoke, json);
    if (!json_path.empty()) {
      json.write(json_path);
      std::printf("[bench_stream] wrote %s\n", json_path.c_str());
    }
    if (!json_append_path.empty()) {
      json.append_to(json_append_path);
      std::printf("[bench_stream] appended to %s\n", json_append_path.c_str());
    }
  } catch (const ContractViolation& e) {
    std::fprintf(stderr, "bench_stream gate failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
