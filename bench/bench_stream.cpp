// Streaming-engine gates: the numbers that justify the bounded-memory
// runtime. Four gated sections, each REQSCHED_CHECK'd so CI fails loudly:
//
//  * soak — a 1M+ request stream (n = 8, d = 3, overload) through a
//    recycling pool. Hard cap: peak resident requests <= admissions-per-
//    round * d (the window bound), i.e. O(n*d) here, independent of the
//    stream length.
//  * memory plateau — the same stream at 4x the horizon must not grow the
//    resident estimate by more than 2x (+ fixed slack): state is windowed,
//    not accumulated. Checked with live-OPT tracking on, which is the part
//    that would silently go linear without closure pruning + dead marking.
//  * throughput — streamed requests/sec, with and without ratio tracking.
//    Floor deliberately conservative (CI machines vary); the point is to
//    catch order-of-magnitude regressions, not 10% noise.
//  * exactness — the live ratio monitor's OPT equals the offline
//    Hopcroft–Karp solve of the recorded trace, on every seed tried.
//
// Usage: bench_stream [--smoke] [--json=BENCH_stream.json]
#include <chrono>
#include <cstdio>
#include <string>

#include "adversary/random.hpp"
#include "analysis/registry.hpp"
#include "bench_json.hpp"
#include "bench_timing.hpp"
#include "engine/simulator.hpp"
#include "engine/sharded.hpp"
#include "offline/offline.hpp"
#include "util/cli.hpp"

namespace reqsched {
namespace {

struct StreamPoint {
  Metrics metrics;
  double seconds = 0.0;
  std::int64_t peak_live = 0;
  std::int64_t max_per_round = 0;
  std::int64_t slab_capacity = 0;
  std::size_t resident_bytes = 0;
  /// Per-round strategy-step latency percentiles, seconds.
  double step_p50 = 0.0;
  double step_p90 = 0.0;
  double step_p99 = 0.0;

  double requests_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(metrics.injected) / seconds
                         : 0.0;
  }
};

StreamPoint run_stream(Round horizon, bool track_opt) {
  UniformWorkload workload({.n = 8, .d = 3, .load = 2.0, .horizon = horizon,
                            .seed = 11, .two_choice = true});
  bench::StepTimer strategy(make_strategy("A_balance"));
  EngineOptions options = streaming_options();
  options.track_live_opt = track_opt;
  Simulator sim(workload, strategy, std::move(options));

  StreamPoint point;
  const auto t0 = std::chrono::steady_clock::now();
  point.metrics = sim.run(4 * horizon + 16);
  const auto t1 = std::chrono::steady_clock::now();
  point.seconds = std::chrono::duration<double>(t1 - t0).count();
  const RequestPool& pool = sim.engine().pool();
  point.peak_live = pool.peak_live();
  point.max_per_round = pool.max_admitted_per_round();
  point.slab_capacity = pool.slab_capacity();
  point.resident_bytes = sim.engine().approx_resident_bytes();
  point.step_p50 = bench::percentile(strategy.samples(), 0.50);
  point.step_p90 = bench::percentile(strategy.samples(), 0.90);
  point.step_p99 = bench::percentile(strategy.samples(), 0.99);
  return point;
}

void run_soak_and_throughput(bool smoke, bench::JsonWriter& json) {
  const Round horizon = smoke ? 8'000 : 70'000;
  const StreamPoint plain = run_stream(horizon, /*track_opt=*/false);
  const StreamPoint tracked = run_stream(horizon, /*track_opt=*/true);

  if (!smoke) {
    REQSCHED_CHECK_MSG(plain.metrics.injected >= 1'000'000,
                       "soak stream too short: " << plain.metrics.injected);
  }
  // The window bound, asserted hard: resident requests never exceeded one
  // deadline window of admissions.
  REQSCHED_CHECK_MSG(plain.peak_live <= plain.max_per_round * 3,
                     "peak resident " << plain.peak_live
                                      << " exceeds the window bound "
                                      << plain.max_per_round * 3);
  REQSCHED_CHECK_MSG(plain.slab_capacity == plain.peak_live,
                     "slab grew past the live peak");

  std::printf(
      "[bench_stream] soak: %lld requests, %lld rounds; peak resident %lld "
      "(<= %lld admissions/round * d = %lld)\n",
      static_cast<long long>(plain.metrics.injected),
      static_cast<long long>(plain.metrics.rounds),
      static_cast<long long>(plain.peak_live),
      static_cast<long long>(plain.max_per_round),
      static_cast<long long>(plain.max_per_round * 3));
  std::printf(
      "[bench_stream] throughput: %.0f req/s untracked, %.0f req/s with "
      "live-ratio tracking (floor 50000 untracked)\n",
      plain.requests_per_sec(), tracked.requests_per_sec());
  REQSCHED_CHECK_MSG(plain.requests_per_sec() >= 50'000.0,
                     "streaming throughput collapsed: "
                         << plain.requests_per_sec() << " req/s");

  json.record("soak", "injected_requests",
              static_cast<double>(plain.metrics.injected), "requests");
  json.record("soak", "peak_resident_requests",
              static_cast<double>(plain.peak_live), "requests");
  json.record("soak", "window_bound",
              static_cast<double>(plain.max_per_round * 3), "requests");
  json.record("throughput", "untracked", plain.requests_per_sec(),
              "requests/sec");
  json.record("throughput", "tracked", tracked.requests_per_sec(),
              "requests/sec");

  // Per-round strategy-step latency: the tail is what a deadline-driven
  // deployment cares about, not the mean the throughput line hides.
  std::printf(
      "[bench_stream] strategy-step latency per round: p50 %.1f us, "
      "p90 %.1f us, p99 %.1f us\n",
      plain.step_p50 * 1e6, plain.step_p90 * 1e6, plain.step_p99 * 1e6);
  json.record("latency", "step_p50", plain.step_p50 * 1e6, "us");
  json.record("latency", "step_p90", plain.step_p90 * 1e6, "us");
  json.record("latency", "step_p99", plain.step_p99 * 1e6, "us");

  const std::size_t rss = bench::peak_rss_bytes();
  std::printf("[bench_stream] peak RSS: %.1f MiB\n",
              static_cast<double>(rss) / (1024.0 * 1024.0));
  json.record("memory", "peak_rss", static_cast<double>(rss), "bytes");
}

void run_memory_plateau(bool smoke, bench::JsonWriter& json) {
  const Round base = smoke ? 2'000 : 10'000;
  const StreamPoint short_run = run_stream(base, /*track_opt=*/true);
  const StreamPoint long_run = run_stream(4 * base, /*track_opt=*/true);
  const auto limit = 2 * short_run.resident_bytes + (64u << 10);
  std::printf(
      "[bench_stream] memory plateau: %zu bytes at %lld rounds, %zu bytes "
      "at %lld rounds (limit %zu)\n",
      short_run.resident_bytes, static_cast<long long>(base),
      long_run.resident_bytes, static_cast<long long>(4 * base), limit);
  REQSCHED_CHECK_MSG(long_run.resident_bytes <= limit,
                     "resident estimate grows with the horizon: "
                         << short_run.resident_bytes << " -> "
                         << long_run.resident_bytes);
  json.record("memory", "resident_bytes_1x",
              static_cast<double>(short_run.resident_bytes), "bytes");
  json.record("memory", "resident_bytes_4x",
              static_cast<double>(long_run.resident_bytes), "bytes");
}

void run_ratio_exactness(bool smoke, bench::JsonWriter& json) {
  // The live monitor must be the *exact* OPT, not an approximation: record
  // the trace alongside the stream and re-solve it offline.
  const Round horizon = smoke ? 200 : 600;
  int checked = 0;
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    UniformWorkload workload({.n = 6, .d = 4, .load = 1.7, .horizon = horizon,
                              .seed = seed, .two_choice = true});
    auto strategy = make_strategy("A_fix");
    EngineOptions options = streaming_options();
    options.record_trace = true;
    options.track_live_opt = true;
    options.opt_prune_every = 8;
    Simulator sim(workload, *strategy, std::move(options));
    sim.run();
    const std::int64_t live = sim.engine().live_optimum();
    const std::int64_t offline = offline_optimum(sim.trace());
    REQSCHED_CHECK_MSG(live == offline, "live OPT " << live
                                                    << " != offline "
                                                    << offline << " at seed "
                                                    << seed);
    ++checked;
  }
  std::printf(
      "[bench_stream] ratio exactness: live OPT == offline solve on %d "
      "streams\n",
      checked);
  json.record("exactness", "streams_verified", checked, "streams");
}

void run_sharded_point(bool smoke, bench::JsonWriter& json) {
  ShardedRunOptions options;
  options.shards = smoke ? 4 : 8;
  options.threads = 4;
  options.engine.track_live_opt = true;
  const Round horizon = smoke ? 2'000 : 8'000;
  const auto t0 = std::chrono::steady_clock::now();
  const ShardedResult result = run_sharded(
      options,
      [horizon](std::int64_t shard) {
        return std::make_unique<UniformWorkload>(RandomWorkloadOptions{
            .n = 8, .d = 3, .load = 1.8, .horizon = horizon,
            .seed = 40 + static_cast<std::uint64_t>(shard),
            .two_choice = true});
      },
      [](std::int64_t) { return make_strategy("A_balance"); });
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  REQSCHED_CHECK_MSG(result.all_ok(), result.failed << " shards failed");
  const double rate =
      seconds > 0.0 ? static_cast<double>(result.total.injected) / seconds
                    : 0.0;
  std::printf(
      "[bench_stream] sharded: %lld shards, %lld requests in %.3f s -> "
      "%.0f req/s aggregate\n",
      static_cast<long long>(options.shards),
      static_cast<long long>(result.total.injected), seconds, rate);
  json.record("sharded", "aggregate", rate, "requests/sec");
}

}  // namespace
}  // namespace reqsched

int main(int argc, char** argv) {
  using namespace reqsched;
  const CliArgs args(argc, argv);
  try {
    const bool smoke = args.get_bool("smoke", false);
    const std::string json_path = args.get_string("json", "");
    args.finish();

    bench::JsonWriter json;
    run_soak_and_throughput(smoke, json);
    run_memory_plateau(smoke, json);
    run_ratio_exactness(smoke, json);
    run_sharded_point(smoke, json);
    if (!json_path.empty()) {
      json.write(json_path);
      std::printf("[bench_stream] wrote %s\n", json_path.c_str());
    }
  } catch (const ContractViolation& e) {
    std::fprintf(stderr, "bench_stream gate failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
