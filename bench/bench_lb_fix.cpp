// Experiment E-2.1 — Theorem 2.1: A_fix vs the phase construction on four
// resources. Series: measured per-phase ratio vs deadline d, against the
// closed form 2 - 1/d.
#include <cmath>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto ds = args.get_int_list("d", {2, 3, 4, 6, 8, 12, 16, 24, 32});
  args.finish();

  AsciiTable table({"d", "measured", "2 - 1/d", "abs err"});
  table.set_title("E-2.1  A_fix on the Theorem 2.1 adversary");
  for (const auto d64 : ds) {
    const auto d = static_cast<std::int32_t>(d64);
    const double measured = scripted_slope(
        [&](std::int32_t p) { return make_lb_fix(d, p); }, 4, 8);
    const double theory = lb_fix(d).to_double();
    table.add_row({std::to_string(d), fmt(measured), fmt(theory),
                   fmt(std::abs(measured - theory), 10)});
  }
  table.print(std::cout);
  std::cout << "\nTheorem 3.3 makes this tight: 2 - 1/d is also the upper\n"
               "bound, so the construction extracts A_fix's exact worst\n"
               "case for every d.\n";
  return 0;
}
