// Experiment F-E — substrate performance (google-benchmark): the matching
// engines that every scheduling round leans on, plus end-to-end simulator
// throughput per strategy. Not a paper artifact (the paper is theory-only);
// this documents that the library is fast enough for large sweeps.
#include <benchmark/benchmark.h>

#include "adversary/random.hpp"
#include "analysis/registry.hpp"
#include "core/simulator.hpp"
#include "matching/bipartite.hpp"
#include "matching/lex_matcher.hpp"
#include "offline/offline.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

BipartiteGraph make_random_graph(std::int32_t lefts, std::int32_t rights,
                                 std::int32_t degree, std::uint64_t seed) {
  Prng rng(seed);
  BipartiteGraph g(lefts, rights);
  for (std::int32_t l = 0; l < lefts; ++l) {
    for (std::int32_t k = 0; k < degree; ++k) {
      g.add_edge(l, static_cast<std::int32_t>(rng.next_below(
                        static_cast<std::uint64_t>(rights))));
    }
  }
  return g;
}

void BM_HopcroftKarp(benchmark::State& state) {
  const auto size = static_cast<std::int32_t>(state.range(0));
  const BipartiteGraph g = make_random_graph(size, size, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(g).size());
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_HopcroftKarp)->Range(64, 4096)->Complexity();

void BM_KuhnOrdered(benchmark::State& state) {
  const auto size = static_cast<std::int32_t>(state.range(0));
  const BipartiteGraph g = make_random_graph(size, size, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kuhn_ordered(g).size());
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_KuhnOrdered)->Range(64, 1024)->Complexity();

void BM_GreedyMaximal(benchmark::State& state) {
  const auto size = static_cast<std::int32_t>(state.range(0));
  const BipartiteGraph g = make_random_graph(size, size, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_maximal(g).size());
  }
}
BENCHMARK(BM_GreedyMaximal)->Range(64, 4096);

LexMatchProblem make_lex_problem(std::int32_t lefts, std::int32_t levels,
                                 bool cardinality_first) {
  Prng rng(11);
  LexMatchProblem p;
  p.left_count = lefts;
  p.right_count = lefts;
  p.level_count = levels;
  p.cardinality_first = cardinality_first;
  p.adj.resize(static_cast<std::size_t>(lefts));
  for (auto& nbrs : p.adj) {
    for (int k = 0; k < 4; ++k) {
      nbrs.push_back(static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(lefts))));
    }
  }
  p.level_of_right.resize(static_cast<std::size_t>(lefts));
  for (auto& lvl : p.level_of_right) {
    lvl = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(levels)));
  }
  return p;
}

void BM_LexMatcherPure(benchmark::State& state) {
  const auto p = make_lex_problem(static_cast<std::int32_t>(state.range(0)),
                                  8, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lex_matching(p).cardinality);
  }
}
BENCHMARK(BM_LexMatcherPure)->Range(32, 512);

void BM_LexMatcherCardinalityFirst(benchmark::State& state) {
  const auto p = make_lex_problem(static_cast<std::int32_t>(state.range(0)),
                                  8, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lex_matching(p).cardinality);
  }
}
BENCHMARK(BM_LexMatcherCardinalityFirst)->Range(32, 256);

void run_simulation(const std::string& strategy_name, std::int32_t n,
                    Round horizon) {
  UniformWorkload workload({.n = n, .d = 4, .load = 1.5, .horizon = horizon,
                            .seed = 3, .two_choice = true});
  auto strategy = make_strategy(strategy_name);
  Simulator sim(workload, *strategy);
  sim.run();
  benchmark::DoNotOptimize(sim.metrics().fulfilled);
}

void BM_SimulatorAFix(benchmark::State& state) {
  for (auto _ : state) {
    run_simulation("A_fix", static_cast<std::int32_t>(state.range(0)), 64);
  }
}
BENCHMARK(BM_SimulatorAFix)->Range(8, 64);

void BM_SimulatorABalance(benchmark::State& state) {
  for (auto _ : state) {
    run_simulation("A_balance", static_cast<std::int32_t>(state.range(0)),
                   64);
  }
}
BENCHMARK(BM_SimulatorABalance)->Range(8, 32);

void BM_SimulatorALocalEager(benchmark::State& state) {
  for (auto _ : state) {
    run_simulation("A_local_eager", static_cast<std::int32_t>(state.range(0)),
                   64);
  }
}
BENCHMARK(BM_SimulatorALocalEager)->Range(8, 64);

void BM_OfflineOptimum(benchmark::State& state) {
  UniformWorkload workload(
      {.n = static_cast<std::int32_t>(state.range(0)), .d = 4, .load = 1.5,
       .horizon = 64, .seed = 5, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  sim.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(offline_optimum(sim.trace()));
  }
}
BENCHMARK(BM_OfflineOptimum)->Range(8, 64);

}  // namespace
}  // namespace reqsched
