// Experiment F-E — substrate performance: the matching engines that every
// scheduling round leans on, plus end-to-end simulator throughput per
// strategy. Not a paper artifact (the paper is theory-only); this documents
// that the library is fast enough for large sweeps.
//
// Besides the google-benchmark microbenchmarks, the custom main() runs four
// gated sections after RunSpecifiedBenchmarks():
//  * offline-solve hot path: the CSR SlotGraph + scratch-arena pipeline
//    against a frozen copy of the pre-CSR pipeline (vector-of-vectors
//    adjacency rebuilt per solve, recursive Hopcroft–Karp, allocating
//    König cover). The refactor must hold a >= 1.5x speedup.
//  * strategy step: the delta-maintained StrategyRuntime A_fix against a
//    frozen copy of the rebuild-per-round A_fix on a deep window (d = 32,
//    ~1M requests), bit-identical first, then timed strategy-step-only.
//    The incremental runtime must hold a >= 2x speedup.
//  * sweep throughput: a small strategy x n x d x seed grid through
//    run_sweep(), reported as points/sec.
//  * capacitated model: offline capacity monotonicity (OPT must not drop
//    when b doubles) plus streaming throughput of the generalized
//    k=4 / b=2 / occupancy<=2 hot path.
// Pass --smoke (stripped before benchmark::Initialize) for reduced sizes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/random.hpp"
#include "bench_json.hpp"
#include "bench_timing.hpp"
#include "analysis/registry.hpp"
#include "analysis/sweep.hpp"
#include "engine/simulator.hpp"
#include "matching/bipartite.hpp"
#include "matching/lex_matcher.hpp"
#include "offline/offline.hpp"
#include "strategies/window_problem.hpp"
#include "util/assert.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

BipartiteGraph make_random_graph(std::int32_t lefts, std::int32_t rights,
                                 std::int32_t degree, std::uint64_t seed) {
  Prng rng(seed);
  BipartiteGraph g(lefts, rights);
  std::vector<std::int32_t> picked;
  for (std::int32_t l = 0; l < lefts; ++l) {
    picked.clear();
    for (std::int32_t k = 0; k < degree; ++k) {
      const auto r = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(rights)));
      if (std::find(picked.begin(), picked.end(), r) != picked.end()) continue;
      picked.push_back(r);
      g.add_edge(l, r);
    }
  }
  g.finalize();
  return g;
}

void BM_HopcroftKarp(benchmark::State& state) {
  const auto size = static_cast<std::int32_t>(state.range(0));
  const BipartiteGraph g = make_random_graph(size, size, 4, 7);
  Matching m;
  MatchingScratch scratch;
  for (auto _ : state) {
    hopcroft_karp(g, m, scratch);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_HopcroftKarp)->Range(64, 4096)->Complexity();

void BM_KuhnOrdered(benchmark::State& state) {
  const auto size = static_cast<std::int32_t>(state.range(0));
  const BipartiteGraph g = make_random_graph(size, size, 4, 7);
  Matching m;
  MatchingScratch scratch;
  for (auto _ : state) {
    kuhn_ordered(g, {}, nullptr, m, scratch);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_KuhnOrdered)->Range(64, 1024)->Complexity();

void BM_GreedyMaximal(benchmark::State& state) {
  const auto size = static_cast<std::int32_t>(state.range(0));
  const BipartiteGraph g = make_random_graph(size, size, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_maximal(g).size());
  }
}
BENCHMARK(BM_GreedyMaximal)->Range(64, 4096);

LexMatchProblem make_lex_problem(std::int32_t lefts, std::int32_t levels,
                                 bool cardinality_first) {
  Prng rng(11);
  LexMatchProblem p;
  p.level_count = levels;
  p.cardinality_first = cardinality_first;
  p.graph.reset(lefts, lefts);
  std::vector<std::int32_t> picked;
  for (std::int32_t l = 0; l < lefts; ++l) {
    picked.clear();
    for (int k = 0; k < 4; ++k) {
      const auto r = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(lefts)));
      if (std::find(picked.begin(), picked.end(), r) != picked.end()) continue;
      picked.push_back(r);
      p.graph.add_edge(l, r);
    }
  }
  p.graph.finalize();
  p.level_of_right.resize(static_cast<std::size_t>(lefts));
  for (auto& lvl : p.level_of_right) {
    lvl = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(levels)));
  }
  return p;
}

void BM_LexMatcherPure(benchmark::State& state) {
  const auto p = make_lex_problem(static_cast<std::int32_t>(state.range(0)),
                                  8, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lex_matching(p).cardinality);
  }
}
BENCHMARK(BM_LexMatcherPure)->Range(32, 512);

void BM_LexMatcherCardinalityFirst(benchmark::State& state) {
  const auto p = make_lex_problem(static_cast<std::int32_t>(state.range(0)),
                                  8, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lex_matching(p).cardinality);
  }
}
BENCHMARK(BM_LexMatcherCardinalityFirst)->Range(32, 256);

void run_simulation(const std::string& strategy_name, std::int32_t n,
                    Round horizon) {
  UniformWorkload workload({.n = n, .d = 4, .load = 1.5, .horizon = horizon,
                            .seed = 3, .two_choice = true});
  auto strategy = make_strategy(strategy_name);
  Simulator sim(workload, *strategy);
  sim.run();
  benchmark::DoNotOptimize(sim.metrics().fulfilled);
}

void BM_SimulatorAFix(benchmark::State& state) {
  for (auto _ : state) {
    run_simulation("A_fix", static_cast<std::int32_t>(state.range(0)), 64);
  }
}
BENCHMARK(BM_SimulatorAFix)->Range(8, 64);

void BM_SimulatorABalance(benchmark::State& state) {
  for (auto _ : state) {
    run_simulation("A_balance", static_cast<std::int32_t>(state.range(0)),
                   64);
  }
}
BENCHMARK(BM_SimulatorABalance)->Range(8, 32);

void BM_SimulatorALocalEager(benchmark::State& state) {
  for (auto _ : state) {
    run_simulation("A_local_eager", static_cast<std::int32_t>(state.range(0)),
                   64);
  }
}
BENCHMARK(BM_SimulatorALocalEager)->Range(8, 64);

void BM_OfflineOptimum(benchmark::State& state) {
  UniformWorkload workload(
      {.n = static_cast<std::int32_t>(state.range(0)), .d = 4, .load = 1.5,
       .horizon = 64, .seed = 5, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  sim.run();
  SolverScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_offline(sim.trace(), scratch).optimum);
  }
}
BENCHMARK(BM_OfflineOptimum)->Range(8, 64);

// ---------------------------------------------------------------------------
// Frozen pre-CSR offline pipeline: the baseline of the >= 1.5x gate. This is
// a faithful copy of the code solve_offline() replaced — per-solve allocation
// of a vector-of-vectors graph, recursive Hopcroft–Karp via std::function,
// König cover on std::queue — and must stay frozen so the gate keeps
// measuring the same thing.
// ---------------------------------------------------------------------------

namespace legacy {

struct Graph {
  std::int32_t left_count = 0;
  std::int32_t right_count = 0;
  std::vector<std::vector<std::int32_t>> adj;
};

Graph build_graph(const Trace& trace) {
  Graph g;
  const std::int32_t n = trace.config().n;
  const Round horizon = trace.empty() ? 0 : trace.last_useful_round();
  g.left_count = static_cast<std::int32_t>(trace.size());
  g.right_count = static_cast<std::int32_t>((horizon + 1) * n);
  g.adj.resize(static_cast<std::size_t>(g.left_count));
  for (const Request& r : trace.requests()) {
    auto& nbrs = g.adj[static_cast<std::size_t>(r.id)];
    for (Round t = r.arrival; t <= r.deadline; ++t) {
      for (const ResourceId res : r.alts) {
        nbrs.push_back(static_cast<std::int32_t>(t * n + res));
      }
    }
  }
  return g;
}

struct Matching {
  std::vector<std::int32_t> left_to_right;
  std::vector<std::int64_t> right_to_left;

  std::int64_t size() const {
    return std::count_if(left_to_right.begin(), left_to_right.end(),
                         [](std::int32_t r) { return r >= 0; });
  }
};

Matching hopcroft_karp(const Graph& g) {
  constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();
  Matching m;
  m.left_to_right.assign(static_cast<std::size_t>(g.left_count), -1);
  m.right_to_left.assign(static_cast<std::size_t>(g.right_count), -1);
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.left_count));

  const auto bfs = [&]() -> bool {
    std::queue<std::int32_t> queue;
    for (std::int32_t l = 0; l < g.left_count; ++l) {
      if (m.left_to_right[static_cast<std::size_t>(l)] < 0) {
        dist[static_cast<std::size_t>(l)] = 0;
        queue.push(l);
      } else {
        dist[static_cast<std::size_t>(l)] = kInf;
      }
    }
    bool found_free_right = false;
    while (!queue.empty()) {
      const std::int32_t l = queue.front();
      queue.pop();
      for (const std::int32_t r : g.adj[static_cast<std::size_t>(l)]) {
        const auto owner = static_cast<std::int32_t>(
            m.right_to_left[static_cast<std::size_t>(r)]);
        if (owner < 0) {
          found_free_right = true;
        } else if (dist[static_cast<std::size_t>(owner)] == kInf) {
          dist[static_cast<std::size_t>(owner)] =
              dist[static_cast<std::size_t>(l)] + 1;
          queue.push(owner);
        }
      }
    }
    return found_free_right;
  };

  const std::function<bool(std::int32_t)> dfs = [&](std::int32_t l) -> bool {
    for (const std::int32_t r : g.adj[static_cast<std::size_t>(l)]) {
      const auto owner = static_cast<std::int32_t>(
          m.right_to_left[static_cast<std::size_t>(r)]);
      if (owner < 0 || (dist[static_cast<std::size_t>(owner)] ==
                            dist[static_cast<std::size_t>(l)] + 1 &&
                        dfs(owner))) {
        m.left_to_right[static_cast<std::size_t>(l)] = r;
        m.right_to_left[static_cast<std::size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<std::size_t>(l)] = kInf;
    return false;
  };

  while (bfs()) {
    for (std::int32_t l = 0; l < g.left_count; ++l) {
      if (m.left_to_right[static_cast<std::size_t>(l)] < 0) dfs(l);
    }
  }
  return m;
}

struct Cover {
  std::vector<std::int32_t> lefts;
  std::vector<std::int32_t> rights;
};

Cover koenig_cover(const Graph& g, const Matching& maximum) {
  std::vector<char> left_visited(static_cast<std::size_t>(g.left_count));
  std::vector<char> right_visited(static_cast<std::size_t>(g.right_count));
  std::queue<std::int32_t> queue;
  for (std::int32_t l = 0; l < g.left_count; ++l) {
    if (maximum.left_to_right[static_cast<std::size_t>(l)] < 0) {
      left_visited[static_cast<std::size_t>(l)] = 1;
      queue.push(l);
    }
  }
  while (!queue.empty()) {
    const std::int32_t l = queue.front();
    queue.pop();
    for (const std::int32_t r : g.adj[static_cast<std::size_t>(l)]) {
      if (right_visited[static_cast<std::size_t>(r)]) continue;
      right_visited[static_cast<std::size_t>(r)] = 1;
      const auto owner = static_cast<std::int32_t>(
          maximum.right_to_left[static_cast<std::size_t>(r)]);
      if (owner >= 0 && !left_visited[static_cast<std::size_t>(owner)]) {
        left_visited[static_cast<std::size_t>(owner)] = 1;
        queue.push(owner);
      }
    }
  }
  Cover cover;
  for (std::int32_t l = 0; l < g.left_count; ++l) {
    if (!left_visited[static_cast<std::size_t>(l)]) cover.lefts.push_back(l);
  }
  for (std::int32_t r = 0; r < g.right_count; ++r) {
    if (right_visited[static_cast<std::size_t>(r)]) cover.rights.push_back(r);
  }
  return cover;
}

bool covers_all_edges(const Graph& g, const Cover& cover) {
  std::vector<char> left_in(static_cast<std::size_t>(g.left_count));
  std::vector<char> right_in(static_cast<std::size_t>(g.right_count));
  for (const std::int32_t l : cover.lefts)
    left_in[static_cast<std::size_t>(l)] = 1;
  for (const std::int32_t r : cover.rights)
    right_in[static_cast<std::size_t>(r)] = 1;
  for (std::int32_t l = 0; l < g.left_count; ++l) {
    for (const std::int32_t r : g.adj[static_cast<std::size_t>(l)]) {
      if (!left_in[static_cast<std::size_t>(l)] &&
          !right_in[static_cast<std::size_t>(r)]) {
        return false;
      }
    }
  }
  return true;
}

std::int64_t solve_offline(const Trace& trace) {
  std::vector<SlotRef> assignment(static_cast<std::size_t>(trace.size()),
                                  kNoSlot);
  if (trace.empty()) return 0;
  const std::int32_t n = trace.config().n;
  const Graph g = build_graph(trace);
  const Matching matching = hopcroft_karp(g);
  const std::int64_t optimum = matching.size();
  const Cover cover = koenig_cover(g, matching);
  REQSCHED_CHECK(
      static_cast<std::int64_t>(cover.lefts.size() + cover.rights.size()) ==
      optimum);
  REQSCHED_CHECK(covers_all_edges(g, cover));
  for (RequestId id = 0; id < trace.size(); ++id) {
    const std::int32_t r = matching.left_to_right[static_cast<std::size_t>(id)];
    if (r >= 0) {
      assignment[static_cast<std::size_t>(id)] =
          SlotRef{r % n, static_cast<Round>(r / n)};
    }
  }
  benchmark::DoNotOptimize(assignment.data());
  return optimum;
}

/// Frozen rebuild-per-round A_fix: the pre-runtime strategy body on the
/// retained build_round_problem helpers, the baseline of the >= 2x
/// strategy-step gate. Must stay frozen for the same reason as the offline
/// pipeline above.
class AFixRebuild final : public IStrategy {
 public:
  std::string name() const override { return "A_fix_rebuild"; }
  void on_round(Simulator& sim) override {
    {
      const auto injected = sim.injected_now();
      const RoundProblem problem = build_round_problem(
          sim, {injected.begin(), injected.end()}, SlotScope::kFreeWindow);
      const ::reqsched::Matching m = kuhn_ordered(problem.graph);
      apply_assignments(sim, problem, m.left_to_right);
    }
    {
      const auto older = older_unscheduled(sim);
      if (!older.empty()) {
        const RoundProblem problem =
            build_round_problem(sim, older, SlotScope::kFreeWindow);
        const ::reqsched::Matching m = greedy_maximal(problem.graph);
        apply_assignments(sim, problem, m.left_to_right);
      }
    }
  }
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// Gated sections (run after the microbenchmarks).
// ---------------------------------------------------------------------------

double time_once(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of timing with the two candidates interleaved (A B A B ...), so a
/// load spike on the machine hits both sides instead of biasing one.
std::pair<double, double> interleaved_best_of(
    int reps, const std::function<void()>& a,
    const std::function<void()>& b) {
  a();  // warm-up: page in code and grow arenas before any timed rep
  b();
  double best_a = std::numeric_limits<double>::infinity();
  double best_b = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    best_a = std::min(best_a, time_once(a));
    best_b = std::min(best_b, time_once(b));
  }
  return {best_a, best_b};
}

std::vector<Trace> make_gate_traces(Round horizon) {
  std::vector<Trace> traces;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    UniformWorkload workload({.n = 16, .d = 4, .load = 1.5,
                              .horizon = horizon, .seed = seed,
                              .two_choice = true});
    auto strategy = make_strategy("A_fix");
    Simulator sim(workload, *strategy);
    sim.run();
    traces.push_back(sim.trace());
  }
  return traces;
}

void run_offline_solve_gate(bool smoke, bench::JsonWriter& json) {
  const Round horizon = smoke ? 128 : 256;
  const int reps = smoke ? 5 : 9;
  const std::vector<Trace> traces = make_gate_traces(horizon);

  // Differential sanity before timing anything.
  SolverScratch scratch;
  std::int64_t csr_total = 0;
  std::int64_t legacy_total = 0;
  for (const Trace& trace : traces) {
    csr_total += solve_offline(trace, scratch).optimum;
    legacy_total += legacy::solve_offline(trace);
  }
  REQSCHED_CHECK_MSG(csr_total == legacy_total,
                     "CSR and legacy offline solvers disagree: "
                         << csr_total << " vs " << legacy_total);

  std::int64_t sink = 0;
  OfflineResult out;
  const auto [legacy_best, csr_best] = interleaved_best_of(
      reps,
      [&] {
        for (const Trace& trace : traces) sink += legacy::solve_offline(trace);
      },
      [&] {
        for (const Trace& trace : traces) {
          solve_offline(trace, scratch, out);
          sink += out.optimum;
        }
      });
  benchmark::DoNotOptimize(sink);

  const double speedup = legacy_best / csr_best;
  std::printf(
      "[bench_perf] offline-solve hot path (%zu traces, horizon %lld): "
      "legacy %.3f ms, CSR+scratch %.3f ms -> %.2fx (gate >= 1.50x)\n",
      traces.size(), static_cast<long long>(horizon), legacy_best * 1e3,
      csr_best * 1e3, speedup);
  REQSCHED_CHECK_MSG(speedup >= 1.5,
                     "offline-solve speedup gate failed: " << speedup
                                                           << "x < 1.5x");
  json.record("offline_solve", "legacy", legacy_best * 1e3, "ms");
  json.record("offline_solve", "csr_scratch", csr_best * 1e3, "ms");
  json.record("offline_solve", "speedup", speedup, "x");
}

RandomWorkloadOptions strategy_step_options(Round horizon) {
  // d = 32 makes the per-round O(n*d) rebuild scan expensive relative to the
  // matching itself — exactly the cost the delta-maintained runtime removes.
  // load 2.0 keeps the window saturated (few free slots per round).
  return {.n = 16, .d = 32, .load = 2.0, .horizon = horizon, .seed = 9,
          .two_choice = true};
}

/// One full streaming run; returns the cumulative strategy-step seconds.
/// `fast_path` toggles the engine's admission fast path (on by default, as
/// in production); the rebuild baseline never opts in either way.
double time_strategy_step(Round horizon, std::unique_ptr<IStrategy> strategy,
                          Metrics* metrics_out = nullptr,
                          bool fast_path = true) {
  UniformWorkload workload(strategy_step_options(horizon));
  bench::StepTimer timer(std::move(strategy));
  EngineOptions options = streaming_options();
  options.admission_fast_path = fast_path;
  Simulator sim(workload, timer, std::move(options));
  const Metrics& metrics = sim.run();
  if (metrics_out != nullptr) *metrics_out = metrics;
  return timer.total_seconds();
}

void run_strategy_step_gate(bool smoke, bench::JsonWriter& json) {
  // ~32 arrivals/round: 31'500 rounds stream > 1M requests through the run.
  const Round horizon = smoke ? 2'000 : 31'500;
  const int reps = smoke ? 3 : 4;

  // Differential sanity before timing: the incremental runtime — with the
  // admission fast path on (the default) AND forced matcher-only — must be
  // bit-identical to the frozen rebuild path on this very workload. The
  // saturated load here (2.0) keeps the fast path mostly falling back, so
  // this triple pins the contended handoff, not just the happy path.
  Metrics incremental_metrics;
  Metrics matcher_only_metrics;
  Metrics rebuild_metrics;
  time_strategy_step(smoke ? horizon : 2'000, make_strategy("A_fix"),
                     &incremental_metrics);
  time_strategy_step(smoke ? horizon : 2'000, make_strategy("A_fix"),
                     &matcher_only_metrics, /*fast_path=*/false);
  time_strategy_step(smoke ? horizon : 2'000,
                     std::make_unique<legacy::AFixRebuild>(),
                     &rebuild_metrics);
  REQSCHED_CHECK_MSG(incremental_metrics == rebuild_metrics,
                     "incremental A_fix diverged from the frozen rebuild: "
                         << incremental_metrics << " vs " << rebuild_metrics);
  REQSCHED_CHECK_MSG(incremental_metrics == matcher_only_metrics,
                     "admission fast path diverged from matcher-only: "
                         << incremental_metrics << " vs "
                         << matcher_only_metrics);

  // Interleaved best-of on the strategy-step time alone (A B A B ... so a
  // machine load spike hits both sides).
  double best_rebuild = std::numeric_limits<double>::infinity();
  double best_incremental = std::numeric_limits<double>::infinity();
  std::int64_t requests = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Metrics metrics;
    best_rebuild = std::min(
        best_rebuild,
        time_strategy_step(horizon, std::make_unique<legacy::AFixRebuild>(),
                           &metrics));
    best_incremental = std::min(
        best_incremental, time_strategy_step(horizon, make_strategy("A_fix")));
    requests = metrics.injected;
  }

  const double speedup = best_rebuild / best_incremental;
  std::printf(
      "[bench_perf] strategy step (A_fix, n=16, d=32, %lld requests): "
      "rebuild %.3f ms, incremental %.3f ms -> %.2fx (gate >= 2.00x)\n",
      static_cast<long long>(requests), best_rebuild * 1e3,
      best_incremental * 1e3, speedup);
  REQSCHED_CHECK_MSG(speedup >= 2.0,
                     "strategy-step speedup gate failed: " << speedup
                                                           << "x < 2.0x");
  json.record("strategy_step", "requests", static_cast<double>(requests),
              "requests");
  json.record("strategy_step", "rebuild", best_rebuild * 1e3, "ms");
  json.record("strategy_step", "incremental", best_incremental * 1e3, "ms");
  json.record("strategy_step", "speedup", speedup, "x");
}

void run_sweep_throughput(bool smoke, bench::JsonWriter& json) {
  const Round horizon = smoke ? 32 : 64;
  SweepSpec spec;
  spec.strategies = {"A_fix", "A_eager"};
  spec.ns = {8, 16};
  spec.ds = {3, 4};
  spec.seeds.clear();
  for (std::uint64_t seed = 1; seed <= (smoke ? 4u : 16u); ++seed) {
    spec.seeds.push_back(seed);
  }
  spec.analyze_paths = true;
  spec.make_workload = [horizon](std::int32_t n, std::int32_t d,
                                 std::uint64_t seed) {
    return std::make_unique<UniformWorkload>(
        RandomWorkloadOptions{.n = n, .d = d, .load = 1.5, .horizon = horizon,
                              .seed = seed, .two_choice = true});
  };

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<SweepPoint> points = run_sweep(spec);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();

  const SweepSummary summary = summarize_sweep(points);
  REQSCHED_CHECK_MSG(summary.failures == 0,
                     summary.failures << " sweep points failed");
  std::printf(
      "[bench_perf] sweep throughput: %lld points (horizon %lld, paths on) "
      "in %.3f s -> %.1f points/s\n",
      static_cast<long long>(summary.points),
      static_cast<long long>(horizon), seconds,
      static_cast<double>(summary.points) / seconds);
  json.record("sweep", "throughput",
              static_cast<double>(summary.points) / seconds, "points/sec");
}

void run_capacitated_gate(bool smoke, bench::JsonWriter& json) {
  // Offline capacity monotonicity: every b=1 schedule is feasible at b=2
  // (each (resource, round) cell only gains units), so the optimum must not
  // drop when capacity doubles. This pins the capacity-unit expansion in
  // SlotGraph / solve_offline against an order relation that holds for every
  // instance, not just a frozen baseline.
  UniformWorkload recorded({.n = 12, .d = 4, .load = 2.5, .horizon = 200,
                            .seed = 21, .two_choice = true, .k = 4});
  auto recorder = make_strategy("A_fix");
  Simulator rec_sim(recorded, *recorder);
  rec_sim.run();
  SolverScratch scratch;
  const std::int64_t opt_b1 = solve_offline(rec_sim.trace(), scratch).optimum;
  ProblemConfig wide = rec_sim.trace().config();
  wide.b = 2;
  Trace doubled(wide);
  for (const Request& r : rec_sim.trace().requests()) {
    RequestSpec spec;
    spec.alts = r.alts;
    spec.window = static_cast<std::int32_t>(r.deadline - r.arrival + 1);
    doubled.add(r.arrival, spec);
  }
  const std::int64_t opt_b2 = solve_offline(doubled, scratch).optimum;
  REQSCHED_CHECK_MSG(opt_b2 >= opt_b1,
                     "offline optimum dropped when capacity doubled: "
                         << opt_b1 << " (b=1) vs " << opt_b2 << " (b=2)");

  // Generalized hot path: the streaming A_fix runtime on a k=4, b=2,
  // occupancy<=2 workload — the configuration where the free-count grid,
  // saturation overlays, and multi-round holds are all live at once.
  const Round horizon = smoke ? 1'500 : 12'000;
  UniformWorkload stream({.n = 16, .d = 8, .load = 3.0, .horizon = horizon,
                          .seed = 23, .two_choice = true, .k = 4, .b = 2,
                          .max_occupancy = 2});
  auto strategy = make_strategy("A_fix");
  Simulator sim(stream, *strategy, streaming_options());
  const auto t0 = std::chrono::steady_clock::now();
  const Metrics& metrics = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  REQSCHED_CHECK_MSG(metrics.fulfilled > 0 &&
                         metrics.fulfilled <= metrics.injected,
                     "capacitated streaming run produced nonsense metrics: "
                         << metrics);
  const double throughput = static_cast<double>(metrics.injected) / seconds;

  std::printf(
      "[bench_perf] capacitated model (k=4, b=2, occ<=2): OPT %lld (b=1) -> "
      "%lld (b=2); streamed %lld requests in %.3f s -> %.0f req/s\n",
      static_cast<long long>(opt_b1), static_cast<long long>(opt_b2),
      static_cast<long long>(metrics.injected), seconds, throughput);
  json.record("capacitated", "opt_b1", static_cast<double>(opt_b1),
              "requests");
  json.record("capacitated", "opt_b2", static_cast<double>(opt_b2),
              "requests");
  json.record("capacitated", "requests",
              static_cast<double>(metrics.injected), "requests");
  json.record("capacitated", "throughput", throughput, "req/s");
}

}  // namespace
}  // namespace reqsched

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark sees (and rejects) them.
  bool smoke = false;
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  reqsched::bench::JsonWriter json;
  reqsched::run_offline_solve_gate(smoke, json);
  reqsched::run_strategy_step_gate(smoke, json);
  reqsched::run_sweep_throughput(smoke, json);
  reqsched::run_capacitated_gate(smoke, json);
  if (!json_path.empty()) {
    json.write(json_path);
    std::printf("[bench_perf] wrote %s\n", json_path.c_str());
  }
  return 0;
}
