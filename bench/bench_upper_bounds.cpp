// Experiment E-3.3/3.4/3.5/3.6 — the Section 3 upper bounds as an empirical
// sweep: for each strategy and deadline, the worst ratio observed across the
// full adversarial + randomized suite, against the theorem's ceiling.
#include <iostream>

#include "adversary/universal.hpp"
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

namespace {
using namespace reqsched;

Fraction bound_of(const std::string& name, std::int32_t d) {
  if (name == "A_fix") return ub_fix(d);
  if (name == "A_current") return ub_current(d);
  if (name == "A_fix_balance") return ub_fix_balance(d);
  if (name == "A_eager") return ub_eager(d);
  return ub_balance(d);
}

/// Worst ratio of `name` across every adversarial instance we implement.
double adversarial_max_ratio(const std::string& name, std::int32_t d) {
  double worst = 1.0;
  const auto consider = [&](IWorkload& workload) {
    auto strategy = make_strategy(name);
    const RunResult result =
        run_experiment(workload, *strategy, {.analyze_paths = false});
    worst = std::max(worst, result.ratio);
  };
  consider(*make_lb_fix(d, 6).workload);
  if (d % 2 == 0) {
    consider(*make_lb_fix_balance(d, 6).workload);
    consider(*make_lb_eager(d, 6).workload);
  }
  if ((d + 1) % 3 == 0) {
    consider(*make_lb_balance((d + 1) / 3, 4, 6).workload);
  }
  if (d % 3 == 0) {
    UniversalAdversary adversary(d, 6);
    consider(adversary);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto ds = args.get_int_list("d", {2, 3, 5, 6, 8, 12});
  args.finish();

  AsciiTable table({"strategy", "d", "UB (thm)", "suite max", "adversarial max",
                    "headroom"});
  table.set_title(
      "E-3.x  Section 3 upper bounds vs worst observed ratios");
  bool all_hold = true;
  for (const std::string& name : global_strategy_names()) {
    for (const auto d64 : ds) {
      const auto d = static_cast<std::int32_t>(d64);
      const Fraction ub = bound_of(name, d);
      const double suite = suite_max_ratio(name, 5, d);
      const double adversarial = adversarial_max_ratio(name, d);
      const double worst = std::max(suite, adversarial);
      all_hold = all_hold && worst <= ub.to_double() + 1e-12;
      std::ostringstream ub_text;
      ub_text << ub << " = " << fmt(ub.to_double());
      table.add_row({name, std::to_string(d), ub_text.str(), fmt(suite),
                     fmt(adversarial), fmt(ub.to_double() - worst)});
    }
  }
  table.print(std::cout);
  std::cout << (all_hold
                    ? "\nEvery observation is below its theorem — the upper "
                      "bounds hold on the whole suite.\n"
                    : "\nUPPER BOUND VIOLATION — investigate!\n");
  REQSCHED_CHECK(all_hold);
  return 0;
}
