// Experiment E-3.2c — the c-alternative extension of Observation 3.2:
// independent-copy EDF is exactly c-competitive with c alternatives. The
// tightness instance realizes ratio == c for every c; random c-alternative
// workloads stay below c and show the two-faced nature of extra choices
// under EDF: more alternatives help OPT but multiply EDF's duplicates.
#include <cmath>
#include <iostream>

#include "strategies/edf_multi.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  const CliArgs args(argc, argv);
  const auto cs = args.get_int_list("c", {1, 2, 3, 4, 5});
  const auto d = static_cast<std::int32_t>(args.get_int("d", 4));
  args.finish();

  {
    AsciiTable table({"c", "EDF fulfilled", "wasted", "OPT", "ratio",
                      "bound c"});
    table.set_title("E-3.2c  c-alternative EDF tightness (d = " +
                    std::to_string(d) + ", 6 intervals)");
    for (const auto c64 : cs) {
      const auto c = static_cast<std::int32_t>(c64);
      const MultiTrace trace = make_multi_edf_tight_instance(c, d, 6);
      const MultiEdfResult edf = run_multi_edf(trace);
      const std::int64_t opt = multi_offline_optimum(trace);
      const double ratio = static_cast<double>(opt) /
                           static_cast<double>(edf.fulfilled);
      REQSCHED_CHECK(std::abs(ratio - static_cast<double>(c)) < 1e-9);
      table.add_row({std::to_string(c), std::to_string(edf.fulfilled),
                     std::to_string(edf.wasted_executions),
                     std::to_string(opt), AsciiTable::fmt(ratio),
                     std::to_string(c)});
    }
    table.print(std::cout);
  }

  {
    AsciiTable table({"c", "mean ratio (random)", "bound c"});
    table.set_title("E-3.2c  c-alternative EDF on random workloads (n = 8)");
    for (const auto c64 : cs) {
      const auto c = static_cast<std::int32_t>(c64);
      double sum = 0;
      int count = 0;
      for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const MultiTrace trace =
            make_multi_random_instance(8, d, c, 1.6, 64, seed);
        const MultiEdfResult edf = run_multi_edf(trace);
        const std::int64_t opt = multi_offline_optimum(trace);
        REQSCHED_CHECK(edf.fulfilled > 0);
        const double ratio = static_cast<double>(opt) /
                             static_cast<double>(edf.fulfilled);
        REQSCHED_CHECK(ratio <= static_cast<double>(c) + 1e-9);
        sum += ratio;
        ++count;
      }
      table.add_row({std::to_string(c), AsciiTable::fmt(sum / count),
                     std::to_string(c)});
    }
    table.print(std::cout);
  }
  std::cout << "\nEDF is 1-competitive at c = 1 and exactly c-competitive\n"
               "in the worst case for every c — the reason the paper's\n"
               "matching-based strategies are needed at all.\n";
  return 0;
}
