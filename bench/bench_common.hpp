// Shared helpers for the reproduction benches.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <algorithm>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"
#include "strategies/scripted.hpp"
#include "util/table.hpp"

namespace reqsched::bench {

/// Runs a theorem instance at two lengths under the scripted strategy and
/// returns the startup-free per-phase ratio. Aborts loudly if the plan ever
/// violates the strategy's rules — a violated plan would make the measured
/// "lower bound" meaningless.
inline double scripted_slope(
    const std::function<TheoremInstance(std::int32_t)>& make,
    std::int32_t short_len, std::int32_t long_len) {
  TheoremInstance short_inst = make(short_len);
  TheoremInstance long_inst = make(long_len);
  ScriptedStrategy short_strategy(short_inst.target, *short_inst.workload);
  ScriptedStrategy long_strategy(long_inst.target, *long_inst.workload);
  const RunResult a = run_experiment(*short_inst.workload, short_strategy,
                                     {.analyze_paths = false});
  const RunResult b = run_experiment(*long_inst.workload, long_strategy,
                                     {.analyze_paths = false});
  REQSCHED_CHECK_MSG(a.violations + b.violations == 0,
                     "plan violated " << to_string(short_inst.target)
                                      << " rules");
  return pairwise_slope_ratio(a, b);
}

/// Same, but with the plain reference strategy (instances without a plan).
inline double reference_slope(
    const std::function<std::unique_ptr<IWorkload>(std::int32_t)>& make,
    const std::string& strategy_name, std::int32_t short_len,
    std::int32_t long_len) {
  auto short_w = make(short_len);
  auto long_w = make(long_len);
  auto sa = make_strategy(strategy_name);
  auto sb = make_strategy(strategy_name);
  const RunResult a =
      run_experiment(*short_w, *sa, {.analyze_paths = false});
  const RunResult b = run_experiment(*long_w, *sb, {.analyze_paths = false});
  return pairwise_slope_ratio(a, b);
}

/// Worst observed raw ratio of `strategy_name` over the randomized suite
/// (uniform, Zipf, bursty, block-storm x several seeds).
inline double suite_max_ratio(const std::string& strategy_name,
                              std::int32_t n, std::int32_t d,
                              std::int32_t horizon = 48) {
  double worst = 1.0;
  for (const std::uint64_t seed : {11u, 23u, 37u}) {
    const RandomWorkloadOptions base{.n = n, .d = d, .load = 1.6,
                                     .horizon = horizon, .seed = seed,
                                     .two_choice = true};
    std::vector<std::unique_ptr<IWorkload>> workloads;
    workloads.push_back(std::make_unique<UniformWorkload>(base));
    workloads.push_back(std::make_unique<ZipfWorkload>(base, 1.1));
    workloads.push_back(std::make_unique<BurstyWorkload>(base, 0.3, 2 * n));
    workloads.push_back(
        std::make_unique<BlockStormWorkload>(base, 0.4, std::min(n, 4)));
    for (auto& workload : workloads) {
      auto strategy = make_strategy(strategy_name);
      const RunResult result =
          run_experiment(*workload, *strategy, {.analyze_paths = false});
      worst = std::max(worst, result.ratio);
    }
  }
  return worst;
}

inline std::string fmt(double v, int precision = 4) {
  return AsciiTable::fmt(v, precision);
}

}  // namespace reqsched::bench
