// Experiments E-3.7 / E-3.8 — the local strategies: competitive quality vs
// communication budget.
//  * A_local_fix on its Theorem 3.7 instance: ratio exactly 2 with 2
//    communication rounds per scheduling round.
//  * A_local_eager: <= 9 communication rounds, <= 5/3 everywhere, and
//    strictly better than A_local_fix on the same instance.
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "engine/simulator.hpp"
#include "local/local_eager.hpp"
#include "local/local_fix.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto ds = args.get_int_list("d", {2, 4, 8, 16});
  args.finish();

  {
    AsciiTable table({"d", "strategy", "measured", "bound", "comm rounds max",
                      "msgs/request"});
    table.set_title("E-3.7/3.8  Theorem 3.7 instance: local strategies");
    for (const auto d64 : ds) {
      const auto d = static_cast<std::int32_t>(d64);
      for (const std::string& name : local_strategy_names()) {
        auto short_inst = make_lb_local_fix(d, 4);
        auto long_inst = make_lb_local_fix(d, 8);
        auto a = make_strategy(name);
        auto b = make_strategy(name);
        const RunResult ra =
            run_experiment(*short_inst, *a, {.analyze_paths = false});
        const RunResult rb =
            run_experiment(*long_inst, *b, {.analyze_paths = false});
        const double slope = pairwise_slope_ratio(ra, rb);
        const double bound = name == "A_local_fix"
                                 ? ub_local_fix().to_double()
                                 : ub_local_eager().to_double();
        const double comm_max =
            rb.metrics.rounds == 0
                ? 0
                : static_cast<double>(rb.metrics.communication_rounds) /
                      static_cast<double>(rb.metrics.rounds);
        const double msgs =
            static_cast<double>(rb.metrics.messages) /
            static_cast<double>(std::max<std::int64_t>(1, rb.metrics.injected));
        table.add_row({std::to_string(d), name, fmt(slope), fmt(bound),
                       fmt(comm_max, 2), fmt(msgs, 2)});
      }
    }
    table.print(std::cout);
  }

  {
    AsciiTable table({"workload", "strategy", "ratio", "bound",
                      "comm rounds/round"});
    table.set_title("E-3.8  A_local_eager <= 5/3 across the suite");
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      for (const std::string& name : local_strategy_names()) {
        const RandomWorkloadOptions base{.n = 6, .d = 4, .load = 1.7,
                                         .horizon = 80, .seed = seed,
                                         .two_choice = true};
        BlockStormWorkload workload(base, 0.4, 4);
        auto strategy = make_strategy(name);
        const RunResult r =
            run_experiment(workload, *strategy, {.analyze_paths = false});
        const double bound = name == "A_local_fix"
                                 ? ub_local_fix().to_double()
                                 : ub_local_eager().to_double();
        REQSCHED_CHECK(r.ratio <= bound + 1e-12);
        const double comm =
            r.metrics.rounds == 0
                ? 0
                : static_cast<double>(r.metrics.communication_rounds) /
                      static_cast<double>(r.metrics.rounds);
        table.add_row({workload.name(), name, fmt(r.ratio), fmt(bound),
                       fmt(comm, 2)});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nSeven extra communication rounds buy the drop from 2 to\n"
               "<= 5/3: A_local_eager's phase 2 reclaims idle current slots\n"
               "and phase 3 brokers the rival exchanges that kill order-2\n"
               "augmenting paths.\n";
  return 0;
}
