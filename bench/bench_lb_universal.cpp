// Experiment E-2.6 — Theorem 2.6: the adaptive adversary that forces
// >= 45/41 on EVERY deterministic strategy. Per strategy we report the
// startup-free per-interval ratio; every value must clear 45/41, and the
// minimum across strategies is how close our portfolio gets to the
// universal limit.
#include <iostream>

#include "adversary/universal.hpp"
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto ds = args.get_int_list("d", {3, 4, 5, 6, 8, 12, 24});
  args.finish();

  for (const auto d64 : ds) {
    const auto d = static_cast<std::int32_t>(d64);
    const Fraction bound = UniversalAdversary::bound(d);
    std::ostringstream bound_text;
    bound_text << "bound " << bound << " = " << fmt(bound.to_double());
    AsciiTable table({"strategy", "measured", bound_text.str(), "margin"});
    table.set_title("E-2.6  adaptive universal adversary, d = " +
                    std::to_string(d) +
                    (d % 3 == 0 ? " (3|d: 45/41)" : " (3 !| d: 12/11)"));
    double weakest = 1e9;
    for (const std::string& name : global_strategy_names()) {
      UniversalAdversary short_adv(d, 4);
      UniversalAdversary long_adv(d, 8);
      auto a = make_strategy(name);
      auto b = make_strategy(name);
      const RunResult ra =
          run_experiment(short_adv, *a, {.analyze_paths = false});
      const RunResult rb =
          run_experiment(long_adv, *b, {.analyze_paths = false});
      const double slope = pairwise_slope_ratio(ra, rb);
      weakest = std::min(weakest, slope);
      table.add_row({name, fmt(slope), fmt(bound.to_double()),
                     fmt(slope - bound.to_double())});
    }
    table.print(std::cout);
    std::cout << "minimum over strategies: " << fmt(weakest) << " (bound "
              << fmt(bound.to_double()) << ")\n\n";
    REQSCHED_CHECK_MSG(weakest >= bound.to_double() - 1e-9,
                       "a strategy beat the universal lower bound");
  }
  std::cout << "The adversary watches which colored request group the\n"
               "strategy neglects and walls exactly that group — no\n"
               "deterministic algorithm escapes (Theorem 2.6).\n";
  return 0;
}
