// Experiment F-F — ablations of the design choices DESIGN.md calls out:
//  (a) how much of A_balance's edge comes from rescheduling alone vs the
//      full lexicographic balance objective (cardinality-only / eager /
//      balance / reverse-balance variants share one code path), and
//  (b) what the direction of the balance weights contributes (the paper's
//      F prefers EARLY slots; reversing it prefers late slots).
#include <iostream>

#include "bench_common.hpp"
#include "matching/lex_matcher.hpp"
#include "strategies/global.hpp"
#include "strategies/window_problem.hpp"
#include "util/cli.hpp"

namespace {
using namespace reqsched;

/// The A_eager/A_balance rematch skeleton with a pluggable level map:
///   levels = 1  -> cardinality only (no slot preference at all)
///   eager       -> levels {now, later}
///   balance     -> level = round - now (the paper's F)
///   reverse     -> level = (d-1) - (round - now) (anti-F: prefer LATE)
class LevelledRematch final : public IStrategy {
 public:
  enum class Mode { kCardinalityOnly, kEager, kBalance, kReverse };

  explicit LevelledRematch(Mode mode) : mode_(mode) {}

  std::string name() const override {
    switch (mode_) {
      case Mode::kCardinalityOnly: return "rematch_cardinality_only";
      case Mode::kEager: return "A_eager";
      case Mode::kBalance: return "A_balance";
      case Mode::kReverse: return "rematch_reverse_balance";
    }
    return "?";
  }

  void on_round(Simulator& sim) override {
    const auto alive = sim.alive();
    const RoundProblem problem = build_round_problem(
        sim, {alive.begin(), alive.end()}, SlotScope::kFullWindow);
    LexMatchProblem lex = to_lex_problem(sim, problem,
                                         /*eager_levels=*/mode_ == Mode::kEager,
                                         /*cardinality_first=*/true);
    if (mode_ == Mode::kCardinalityOnly) {
      lex.level_count = 1;
      std::fill(lex.level_of_right.begin(), lex.level_of_right.end(), 0);
    } else if (mode_ == Mode::kReverse) {
      const std::int32_t d = sim.config().d;
      for (std::size_t r = 0; r < lex.level_of_right.size(); ++r) {
        lex.level_of_right[r] = d - 1 - lex.level_of_right[r];
      }
    }
    for (std::size_t l = 0; l < problem.lefts.size(); ++l) {
      if (sim.is_scheduled(problem.lefts[l])) {
        lex.required_lefts.push_back(static_cast<std::int32_t>(l));
      }
    }
    const LexMatchResult result = solve_lex_matching(lex);
    rebook(sim, problem, result.left_to_right);
  }

 private:
  Mode mode_;
};

/// The A_fix/A_fix_balance skeleton (frozen bookings, no rescheduling) with
/// a pluggable placement objective for new/straggler requests.
class FixVariant final : public IStrategy {
 public:
  enum class Mode { kGreedy, kMaxNew, kLexEarly, kLexLate };

  explicit FixVariant(Mode mode) : mode_(mode) {}

  std::string name() const override {
    switch (mode_) {
      case Mode::kGreedy: return "fix_greedy";
      case Mode::kMaxNew: return "A_fix";
      case Mode::kLexEarly: return "A_fix_balance";
      case Mode::kLexLate: return "fix_late_lex";
    }
    return "?";
  }

  void on_round(Simulator& sim) override {
    if (mode_ == Mode::kMaxNew) {
      // The A_fix rule via the rebuild-per-round helpers (the ablation keeps
      // every variant on the same legacy code path so the comparison isolates
      // the placement objective, not the runtime).
      const auto injected = sim.injected_now();
      const RoundProblem fresh = build_round_problem(
          sim, {injected.begin(), injected.end()}, SlotScope::kFreeWindow);
      apply_assignments(sim, fresh, kuhn_ordered(fresh.graph).left_to_right);
      const auto older = older_unscheduled(sim);
      if (!older.empty()) {
        const RoundProblem extension =
            build_round_problem(sim, older, SlotScope::kFreeWindow);
        apply_assignments(sim, extension,
                          greedy_maximal(extension.graph).left_to_right);
      }
      return;
    }
    const auto lefts = unscheduled_alive(sim);
    const RoundProblem problem =
        build_round_problem(sim, lefts, SlotScope::kFreeWindow);
    if (mode_ == Mode::kGreedy) {
      const Matching m = greedy_maximal(problem.graph);
      apply_assignments(sim, problem, m.left_to_right);
      return;
    }
    LexMatchProblem lex = to_lex_problem(sim, problem,
                                         /*eager_levels=*/false,
                                         /*cardinality_first=*/false);
    if (mode_ == Mode::kLexLate) {
      const std::int32_t d = sim.config().d;
      for (auto& lvl : lex.level_of_right) lvl = d - 1 - lvl;
    }
    const LexMatchResult result = solve_lex_matching(lex);
    apply_assignments(sim, problem, result.left_to_right);
  }

 private:
  Mode mode_;
};

double mean_ratio_on_suite(IStrategy& strategy_template,
                           const std::function<std::unique_ptr<IStrategy>()>&
                               make,
                           std::int32_t n, std::int32_t d) {
  (void)strategy_template;
  double sum = 0.0;
  std::int32_t count = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    // Overloaded: blocks land nearly every round and overlap.
    BlockStormWorkload workload({.n = n, .d = d, .load = 1.0, .horizon = 96,
                                 .seed = seed, .two_choice = true},
                                0.9, 4);
    auto strategy = make();
    const RunResult result =
        run_experiment(workload, *strategy, {.analyze_paths = false});
    sum += result.ratio;
    ++count;
  }
  return sum / count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto d = static_cast<std::int32_t>(args.get_int("d", 4));
  args.finish();

  {
    // Without rescheduling, the placement objective is all a strategy has;
    // the fix-family ablation isolates its effect on the two frozen-schedule
    // adversaries and an overloaded storm.
    AsciiTable table({"variant", "objective", "Thm 2.1 instance",
                      "Thm 2.3 instance", "overloaded storm (mean)"});
    table.set_title("F-F(a')  placement objective, frozen schedules (d = " +
                    std::to_string(d) + ")");
    struct FixRow {
      FixVariant::Mode mode;
      const char* objective;
    };
    const FixRow fix_rows[] = {
        {FixVariant::Mode::kGreedy, "any maximal matching"},
        {FixVariant::Mode::kMaxNew, "max new requests (A_fix)"},
        {FixVariant::Mode::kLexEarly, "paper's F: early-lex (A_fix_balance)"},
        {FixVariant::Mode::kLexLate, "anti-F: late-lex"},
    };
    for (const FixRow& row : fix_rows) {
      auto fix_inst = make_lb_fix(d, 6);
      FixVariant s1(row.mode);
      const RunResult r1 = run_experiment(*fix_inst.workload, s1,
                                          {.analyze_paths = false});
      auto bal_inst = make_lb_fix_balance(d, 6);
      FixVariant s2(row.mode);
      const RunResult r2 = run_experiment(*bal_inst.workload, s2,
                                          {.analyze_paths = false});
      FixVariant probe(row.mode);
      const double mean = mean_ratio_on_suite(
          probe, [&] { return std::make_unique<FixVariant>(row.mode); }, 6,
          d);
      table.add_row({s1.name(), row.objective, fmt(r1.ratio), fmt(r2.ratio),
                     fmt(mean)});
    }
    table.print(std::cout);
  }

  {
    AsciiTable table({"variant", "objective", "overloaded storm (mean)",
                      "Thm 2.4 instance"});
    table.set_title("F-F(a)  rematch objective, with rescheduling (d = " +
                    std::to_string(d) + ")");
    struct Row {
      LevelledRematch::Mode mode;
      const char* objective;
    };
    const Row rows[] = {
        {LevelledRematch::Mode::kCardinalityOnly, "max |M| only"},
        {LevelledRematch::Mode::kEager, "+ max executions now"},
        {LevelledRematch::Mode::kBalance, "+ full lex profile (paper's F)"},
        {LevelledRematch::Mode::kReverse, "anti-F: prefer LATE slots"},
    };
    for (const Row& row : rows) {
      LevelledRematch probe(row.mode);
      const double mean = mean_ratio_on_suite(
          probe, [&] { return std::make_unique<LevelledRematch>(row.mode); },
          6, d);
      auto instance = make_lb_eager(d, 6);
      LevelledRematch strategy(row.mode);
      const RunResult r =
          run_experiment(*instance.workload, strategy,
                         {.analyze_paths = false});
      table.add_row({strategy.name(), row.objective, fmt(mean), fmt(r.ratio)});
    }
    table.print(std::cout);
  }

  {
    AsciiTable table(
        {"strategy", "reschedules?", "Thm 2.1 instance", "Thm 2.4 instance"});
    table.set_title("F-F(b)  the value of rescheduling (d = " +
                    std::to_string(d) + ")");
    for (const std::string& name :
         {std::string("A_fix"), std::string("A_fix_balance"),
          std::string("A_eager"), std::string("A_balance")}) {
      const bool reschedules = name == "A_eager" || name == "A_balance";
      auto fix_inst = make_lb_fix(d, 6);
      auto sa = make_strategy(name);
      const RunResult ra = run_experiment(*fix_inst.workload, *sa,
                                          {.analyze_paths = false});
      auto eager_inst = make_lb_eager(d, 6);
      auto sb = make_strategy(name);
      const RunResult rb = run_experiment(*eager_inst.workload, *sb,
                                          {.analyze_paths = false});
      table.add_row({name, reschedules ? "yes" : "no", fmt(ra.ratio),
                     fmt(rb.ratio)});
    }
    table.print(std::cout);
  }
  std::cout << "\nTakeaways: rescheduling alone (cardinality-only) already\n"
               "dodges the frozen-schedule traps; the eager and balance\n"
               "objectives then decide WHICH max matching to hold, and the\n"
               "paper's early-leaning F beats both no preference and the\n"
               "late-leaning reverse on the adversarial instances.\n";
  return 0;
}
