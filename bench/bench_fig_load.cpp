// Experiment F-I — load sensitivity: the two-choice load-balancing story of
// the paper's introduction, measured. As the offered load crosses 1.0
// request per resource per round, the system saturates; the strategies
// differ in how gracefully. Series: fulfilled fraction and ratio vs load.
#include <iostream>

#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::int32_t>(args.get_int("n", 8));
  const auto d = static_cast<std::int32_t>(args.get_int("d", 4));
  args.finish();

  const std::vector<double> loads{0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0};
  const std::vector<std::string> lineup{"A_fix", "A_balance", "A_local_fix",
                                        "A_local_eager", "EDF_two_choice"};

  AsciiTable fulfilled_table({"load", "A_fix", "A_balance", "A_local_fix",
                              "A_local_eager", "EDF_two_choice", "OPT frac"});
  fulfilled_table.set_title(
      "F-I  fulfilled fraction vs offered load (n=" + std::to_string(n) +
      ", d=" + std::to_string(d) + ", uniform traffic)");
  AsciiTable ratio_table({"load", "A_fix", "A_balance", "A_local_fix",
                          "A_local_eager", "EDF_two_choice"});
  ratio_table.set_title("F-I  competitive ratio vs offered load");

  for (const double load : loads) {
    SweepSpec spec;
    spec.strategies = lineup;
    spec.ns = {n};
    spec.ds = {d};
    spec.seeds = {1, 2, 3};
    spec.make_workload = [&](std::int32_t nn, std::int32_t dd,
                             std::uint64_t seed)
        -> std::unique_ptr<IWorkload> {
      return std::make_unique<UniformWorkload>(RandomWorkloadOptions{
          .n = nn, .d = dd, .load = load, .horizon = 128, .seed = seed,
          .two_choice = true});
    };
    const auto points = run_sweep(spec);

    std::vector<std::string> frac_row{AsciiTable::fmt(load, 1)};
    std::vector<std::string> ratio_row{AsciiTable::fmt(load, 1)};
    double opt_sum = 0;
    double opt_injected = 0;
    for (const std::string& name : lineup) {
      double fulfilled = 0;
      double injected = 0;
      double ratio_sum = 0;
      std::int64_t count = 0;
      for (const SweepPoint& p : points) {
        if (p.strategy != name) continue;
        REQSCHED_CHECK_MSG(!p.failed, p.error);
        fulfilled += static_cast<double>(p.result.metrics.fulfilled);
        injected += static_cast<double>(p.result.metrics.injected);
        ratio_sum += p.result.ratio;
        if (name == lineup.front()) {
          // OPT depends only on the trace, identical across strategies.
          opt_sum += static_cast<double>(p.result.optimum);
          opt_injected += static_cast<double>(p.result.metrics.injected);
        }
        ++count;
      }
      frac_row.push_back(fmt(fulfilled / injected));
      ratio_row.push_back(fmt(ratio_sum / static_cast<double>(count)));
    }
    frac_row.push_back(fmt(opt_sum / opt_injected));
    fulfilled_table.add_row(frac_row);
    ratio_table.add_row(ratio_row);
  }
  fulfilled_table.print(std::cout);
  ratio_table.print(std::cout);
  std::cout <<
      "\nBelow load 1.0 everyone (except wasteful EDF) serves nearly\n"
      "everything; past saturation the matching strategies track OPT's\n"
      "achievable fraction while EDF's duplicate service costs a constant\n"
      "factor. The competitive ratio stays near 1 for the matching\n"
      "strategies at every load — random traffic does not realize the\n"
      "adversarial gaps of Table 1.\n";
  return 0;
}
