// Experiment F-A — the library's summary series: for every strategy, the
// measured worst-case ratio (its own theorem instance where one exists,
// else the harshest suite instance) as a function of d, next to the proven
// LB/UB envelope. This is the "shape" picture of Table 1: who wins, by how
// much, and where the curves flatten.
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  using namespace reqsched::bench;
  const CliArgs args(argc, argv);
  const auto ds = args.get_int_list("d", {2, 4, 6, 8, 12, 16, 20});
  args.finish();

  AsciiTable table({"d", "A_fix", "A_fix_balance", "A_eager", "A_balance",
                    "A_current(suite)"});
  table.set_title(
      "F-A  measured worst-case ratio vs d (own adversary per strategy)");
  for (const auto d64 : ds) {
    const auto d = static_cast<std::int32_t>(d64);
    std::vector<std::string> row{std::to_string(d)};
    row.push_back(fmt(scripted_slope(
        [&](std::int32_t p) { return make_lb_fix(d, p); }, 4, 8)));
    row.push_back(fmt(reference_slope(
        [&](std::int32_t p) {
          return std::move(make_lb_fix_balance(d, p).workload);
        },
        "A_fix_balance", 4, 8)));
    row.push_back(fmt(scripted_slope(
        [&](std::int32_t p) { return make_lb_eager(d, p); }, 4, 8)));
    const std::int32_t x = (d + 1) / 3;
    if (3 * x - 1 == d) {
      row.push_back(fmt(scripted_slope(
          [&](std::int32_t m) { return make_lb_balance(x, 8, m); }, 4, 8)));
    } else {
      row.push_back("-");
    }
    row.push_back(fmt(suite_max_ratio("A_current", 5, d)));
    table.add_row(row);
  }
  table.print(std::cout);

  AsciiTable theory({"d", "2-1/d", "3d/(2d+2)", "4/3", "(5d+2)/(4d+1)",
                     "2-1/d (UB)"});
  theory.set_title("F-A  the corresponding theoretical envelope");
  for (const auto d64 : ds) {
    const auto d = static_cast<std::int32_t>(d64);
    theory.add_row({std::to_string(d), fmt(lb_fix(d).to_double()),
                    fmt(Fraction(3 * d, 2 * d + 2).to_double()),
                    fmt(4.0 / 3.0),
                    (d + 1) % 3 == 0 ? fmt(lb_balance(d).to_double()) : "-",
                    fmt(ub_current(d).to_double())});
  }
  theory.print(std::cout);
  std::cout << "\nShape check (matches the paper): A_fix is worst and\n"
               "climbs to 2; A_fix_balance converges to 3/2; A_eager is\n"
               "pinned at 4/3; A_balance trends to 5/4 — rescheduling plus\n"
               "balancing wins, exactly the paper's ranking.\n";
  return 0;
}
