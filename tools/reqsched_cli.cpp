// reqsched — the library's command-line face.
//
//   reqsched list
//       all registered strategies with their capability flags
//   reqsched bounds [--d=8]
//       Table 1's theoretical bounds at a given deadline
//   reqsched run --strategy=A_balance --workload=zipf [--n=8 --d=4
//                --rounds=200 --seed=1 --load=1.5 --strategy-seed=1]
//                [--timeline] [--timeseries=out.csv]
//       one experiment against the exact offline optimum
//   reqsched sweep --strategies=A_fix,A_balance [--n=4,8 --d=2,4
//                  --seeds=1,2,3 --workload=uniform --strategy-seed=1]
//                  [--csv=out.csv]
//       a parallel grid sweep with summary
//   reqsched stream --strategy=A_balance --workload=uniform [--n=8 --d=4
//                   --rounds=100000 --load=1.5 --seed=1 --shards=4
//                   --threads=0 --strategy-seed=1] [--track-ratio]
//                   [--snapshot-every=1000 --jsonl=stats.jsonl]
//                   [--frame-every=4096 --stats-window=4096]
//                   [--checkpoint-every=10000 --checkpoint-dir=ckpt]
//                   [--resume=ckpt/shard-0.ckpt] [--resume-dir=ckpt]
//       bounded-memory streaming runs (one independent stream per shard;
//       shard k's randomized strategies are seeded strategy-seed + k).
//       Workloads: the finite random families (uniform|zipf|bursty|
//       blockstorm, --load as the arrival knob) or the open-loop stationary
//       families (poisson|mmpp|diurnal|flashcrowd|driftzipf, --rho as the
//       load factor: long-run arrivals per round = rho * n * b).
//       --frame-every emits streaming StatsFrames (windowed loss rate +
//       tardiness percentiles) to the JSONL sink every N rounds.
//       --checkpoint-every writes shard-<k>.ckpt atomically every N rounds;
//       --resume continues one checkpointed shard bit-identically;
//       --resume-dir restores every shard-<i>.ckpt in a directory and runs
//       them in parallel to completion
//   reqsched replay --resume=ckpt/shard-0.ckpt [--to-round=50000]
//                   [--audit] [--digest-every=1000]
//       re-executes a checkpointed run from its snapshot: --to-round stops
//       after that many total rounds, --audit sweeps the oracles every
//       round, --digest-every prints state digests to bisect divergences
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>

#include "adversary/openloop.hpp"
#include "adversary/random.hpp"
#include "analysis/bounds.hpp"
#include "analysis/harness.hpp"
#include "analysis/prefix.hpp"
#include "analysis/registry.hpp"
#include "analysis/sweep.hpp"
#include "analysis/timeline.hpp"
#include "analysis/timeseries.hpp"
#include "engine/sharded.hpp"
#include "offline/offline.hpp"
#include "snapshot/checkpoint.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace reqsched;

std::unique_ptr<IWorkload> make_workload(const std::string& family,
                                         const RandomWorkloadOptions& base) {
  if (family == "uniform") return std::make_unique<UniformWorkload>(base);
  if (family == "zipf") return std::make_unique<ZipfWorkload>(base, 1.2);
  if (family == "bursty") {
    return std::make_unique<BurstyWorkload>(base, 0.3, 2 * base.n);
  }
  if (family == "blockstorm") {
    return std::make_unique<BlockStormWorkload>(base, 0.5,
                                                std::min(base.n, 4));
  }
  REQSCHED_REQUIRE_MSG(false, "unknown workload family: " << family
                                                          << " (uniform|zipf|"
                                                             "bursty|"
                                                             "blockstorm)");
  return nullptr;
}

bool is_openloop_family(const std::string& family) {
  return family == "poisson" || family == "mmpp" || family == "diurnal" ||
         family == "flashcrowd" || family == "driftzipf";
}

/// Applies the family's modulation preset on top of the shared base knobs
/// (n, d, rho, horizon, seed). Every preset keeps the long-run mean at
/// rho * n * b — the OpenLoopWorkload constructor normalizes the modulation.
OpenLoopOptions openloop_preset(const std::string& family,
                                OpenLoopOptions base) {
  if (family == "poisson") return base;
  if (family == "mmpp") {
    base.mmpp_high_mult = 4.0;
    base.mmpp_p_enter = 0.05;
    base.mmpp_p_exit = 0.2;
    return base;
  }
  if (family == "diurnal") {
    base.diurnal_amplitude = 0.5;
    base.diurnal_period = 1 << 14;
    return base;
  }
  if (family == "flashcrowd") {
    base.flash_probability = 0.002;
    base.flash_mult = 8.0;
    base.flash_duration = 4 * base.d;
    base.flash_hot_set = std::max(base.k, base.n / 8);
    return base;
  }
  if (family == "driftzipf") {
    base.zipf_exponent = 1.2;
    base.zipf_drift_every = 1024;
    return base;
  }
  REQSCHED_REQUIRE_MSG(false, "unknown open-loop family: " << family);
  return base;
}

RandomWorkloadOptions base_options(const CliArgs& args) {
  RandomWorkloadOptions options;
  options.n = static_cast<std::int32_t>(args.get_int("n", 8));
  options.d = static_cast<std::int32_t>(args.get_int("d", 4));
  options.load = args.get_double("load", 1.5);
  options.horizon = args.get_int("rounds", 200);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.min_window =
      static_cast<std::int32_t>(args.get_int("min-window", 0));
  return options;
}

const char* to_string(StrategyClass kind) {
  switch (kind) {
    case StrategyClass::kGlobal: return "global";
    case StrategyClass::kLocal: return "local";
    case StrategyClass::kBaseline: return "baseline";
  }
  return "?";
}

int cmd_list() {
  AsciiTable table({"strategy", "class", "incremental", "needs-history",
                    "randomized"});
  for (const StrategyInfo& info : strategy_registry()) {
    table.add_row({info.name, to_string(info.kind),
                   info.incremental ? "yes" : "-",
                   info.needs_history ? "yes" : "-",
                   info.randomized ? "yes" : "-"});
  }
  table.print(std::cout);
  return 0;
}

/// Fails fast (before any run is constructed) on a typoed strategy name.
void require_strategy(const std::string& name) {
  REQSCHED_REQUIRE_MSG(strategy_exists(name),
                       "unknown strategy: " << name
                                            << " (see 'reqsched_cli list')");
}

std::string checkpoint_path(const std::string& dir, std::int64_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".ckpt";
}

std::string hex64(std::uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

/// Identity manifest for shard `shard` of a stream run, mirroring the
/// per-shard seeding of the factories in cmd_stream (workload seed + shard,
/// strategy seed + shard). `openloop` is non-null for the open-loop
/// stationary families, whose knobs live in manifest.openloop instead of
/// manifest.workload.
CheckpointManifest stream_manifest(const std::string& family,
                                   const RandomWorkloadOptions& base,
                                   const OpenLoopOptions* openloop,
                                   const std::string& strategy_name,
                                   std::uint64_t strategy_seed,
                                   const EngineOptions& engine,
                                   std::int64_t shard) {
  CheckpointManifest m;
  m.strategy_name = strategy_name;
  m.strategy_seed = strategy_seed + static_cast<std::uint64_t>(shard);
  m.workload_family = family;
  if (openloop != nullptr) {
    m.openloop = *openloop;
    m.openloop.seed = openloop->seed + static_cast<std::uint64_t>(shard);
    m.config = m.openloop.problem_config();
  } else {
    m.workload = base;
    m.workload.seed = base.seed + static_cast<std::uint64_t>(shard);
    m.config = m.workload.problem_config();
  }
  m.retain_history = engine.retain_history;
  m.record_trace = engine.record_trace;
  m.admission_fast_path = engine.admission_fast_path;
  m.track_live_opt = engine.track_live_opt;
  m.opt_prune_every = engine.opt_prune_every;
  m.checkpoint_every = engine.checkpoint_every;
  m.shard = shard;
  m.track_stream_stats = engine.track_stream_stats;
  m.stream_stats = engine.stream_stats;
  m.frame_every = engine.frame_every;
  m.git_describe = snapshot_git_describe();
  m.trace_digest = m.identity_digest();
  return m;
}

/// A checkpoint file loaded and verified, with the workload and strategy
/// rebuilt from its embedded manifest — everything a resumed run needs.
struct ResumedRun {
  std::vector<std::uint8_t> bytes;
  CheckpointManifest manifest;
  std::unique_ptr<IWorkload> workload;
  std::unique_ptr<IStrategy> strategy;

  /// Engine options matching the checkpointed run (restore refuses a
  /// mismatch, so these are not caller-tunable).
  EngineOptions engine_options() const {
    EngineOptions eo;
    eo.retain_history = manifest.retain_history;
    eo.record_trace = manifest.record_trace;
    eo.admission_fast_path = manifest.admission_fast_path;
    eo.track_live_opt = manifest.track_live_opt;
    eo.opt_prune_every = manifest.opt_prune_every;
    eo.shard = manifest.shard;
    eo.track_stream_stats = manifest.track_stream_stats;
    eo.stream_stats = manifest.stream_stats;
    eo.frame_every = manifest.frame_every;
    return eo;
  }
};

ResumedRun load_resume(const std::string& path) {
  ResumedRun rr;
  rr.bytes = CheckpointManager::load_file(path);
  rr.manifest = CheckpointManager::peek_manifest(rr.bytes);
  rr.workload = is_openloop_family(rr.manifest.workload_family)
                    ? std::make_unique<OpenLoopWorkload>(
                          rr.manifest.openloop, rr.manifest.workload_family)
                    : make_workload(rr.manifest.workload_family,
                                    rr.manifest.workload);
  require_strategy(rr.manifest.strategy_name);
  rr.strategy =
      make_strategy(rr.manifest.strategy_name, rr.manifest.strategy_seed);
  return rr;
}

int cmd_bounds(const CliArgs& args) {
  const auto d = static_cast<std::int32_t>(args.get_int("d", 8));
  args.finish();
  AsciiTable table({"algorithm", "lower bound", "upper bound"});
  table.set_title("Table 1 bounds at d = " + std::to_string(d));
  const auto fraction_text = [](const Fraction& f) {
    std::ostringstream os;
    os << f << " = " << AsciiTable::fmt(f.to_double());
    return os.str();
  };
  table.add_row({"A_fix", fraction_text(lb_fix(d)), fraction_text(ub_fix(d))});
  table.add_row({"A_current",
                 "e/(e-1) = " + AsciiTable::fmt(lb_current_limit()) +
                     " (d->inf)",
                 fraction_text(ub_current(d))});
  table.add_row({"A_fix_balance", fraction_text(lb_fix_balance(d)),
                 fraction_text(ub_fix_balance(d))});
  table.add_row({"A_eager", fraction_text(lb_eager()),
                 fraction_text(ub_eager(d))});
  if ((d + 1) % 3 == 0) {
    table.add_row({"A_balance", fraction_text(lb_balance(d)),
                   fraction_text(ub_balance(d))});
  } else {
    table.add_row({"A_balance", "(5d+2)/(4d+1) at d = 3x-1",
                   fraction_text(ub_balance(d))});
  }
  table.add_row({"any deterministic A", fraction_text(lb_universal()), "-"});
  table.add_row({"A_local_fix", fraction_text(ub_local_fix()),
                 fraction_text(ub_local_fix())});
  table.add_row({"A_local_eager", "-", fraction_text(ub_local_eager())});
  table.add_row({"EDF (2 alternatives)", fraction_text(ub_edf_two_choice()),
                 fraction_text(ub_edf_two_choice())});
  table.print(std::cout);
  return 0;
}

int cmd_run(const CliArgs& args) {
  const auto options = base_options(args);
  const std::string family = args.get_string("workload", "uniform");
  const std::string strategy_name = args.get_string("strategy", "A_balance");
  const std::string timeseries_path = args.get_string("timeseries", "");
  const bool timeline = args.get_bool("timeline", false);
  const auto strategy_seed =
      static_cast<std::uint64_t>(args.get_int("strategy-seed", 1));
  args.finish();  // all flags read — a typo aborts before the run
  require_strategy(strategy_name);
  auto workload = make_workload(family, options);

  auto inner = make_strategy(strategy_name, strategy_seed);
  // The prefix probe samples everything the plain time-series probe does,
  // plus the exact prefix optimum — per-round competitive observability.
  PrefixOptimumProbe probe(std::move(inner));

  Simulator sim(*workload, probe);
  sim.run();
  const std::int64_t optimum = offline_optimum(sim.trace());

  std::cout << "strategy   : " << strategy_name << '\n'
            << "workload   : " << workload->name() << '\n'
            << "injected   : " << sim.metrics().injected << '\n'
            << "fulfilled  : " << sim.metrics().fulfilled << '\n'
            << "expired    : " << sim.metrics().expired << '\n'
            << "offline OPT: " << optimum << '\n'
            << "ratio      : "
            << AsciiTable::fmt(
                   competitive_ratio(optimum, sim.metrics().fulfilled))
            << '\n';
  const TimeSeriesSummary summary =
      summarize_timeseries(probe.samples(), options.n);
  std::cout << "utilization: " << AsciiTable::fmt(summary.mean_utilization)
            << "  mean pending: " << AsciiTable::fmt(summary.mean_pending, 1)
            << "  peak pending: " << summary.peak_pending << '\n'
            << "prefix ratio: final "
            << AsciiTable::fmt(summary.final_prefix_ratio) << "  worst round "
            << AsciiTable::fmt(summary.max_prefix_ratio) << '\n';

  if (!timeseries_path.empty()) {
    std::ofstream file(timeseries_path);
    write_timeseries_csv(file, probe.samples());
    std::cout << "wrote per-round series to " << timeseries_path << '\n';
  }
  if (timeline) {
    TimelineOptions topt;
    topt.to = std::min<Round>(sim.trace().last_useful_round(), 77);
    std::cout << render_timeline(sim.trace(), sim.online_matching(), topt);
  }
  return 0;
}

int cmd_sweep(const CliArgs& args) {
  SweepSpec spec;
  const std::string strategies =
      args.get_string("strategies", "A_fix,A_balance");
  for (std::size_t pos = 0; pos <= strategies.size();) {
    const auto comma = strategies.find(',', pos);
    spec.strategies.push_back(strategies.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  spec.ns.clear();
  for (const auto v : args.get_int_list("n", {8})) {
    spec.ns.push_back(static_cast<std::int32_t>(v));
  }
  spec.ds.clear();
  for (const auto v : args.get_int_list("d", {4})) {
    spec.ds.push_back(static_cast<std::int32_t>(v));
  }
  spec.seeds.clear();
  for (const auto v : args.get_int_list("seeds", {1, 2, 3})) {
    spec.seeds.push_back(static_cast<std::uint64_t>(v));
  }
  const std::string family = args.get_string("workload", "uniform");
  const auto rounds = args.get_int("rounds", 96);
  const double load = args.get_double("load", 1.6);
  const std::string csv_path = args.get_string("csv", "");
  spec.strategy_seed =
      static_cast<std::uint64_t>(args.get_int("strategy-seed", 1));
  args.finish();
  for (const auto& name : spec.strategies) require_strategy(name);
  spec.make_workload = [family, rounds, load](
                           std::int32_t n, std::int32_t d,
                           std::uint64_t seed) -> std::unique_ptr<IWorkload> {
    return make_workload(family,
                         RandomWorkloadOptions{.n = n, .d = d, .load = load,
                                               .horizon = rounds, .seed = seed,
                                               .two_choice = true});
  };

  const auto points = run_sweep(spec);
  const SweepSummary summary = summarize_sweep(points);
  std::cout << "points     : " << summary.points << '\n'
            << "failures   : " << summary.failures << '\n';
  if (summary.all_failed()) {
    std::cout << "mean ratio : n/a (every point failed)\n"
              << "max ratio  : n/a (every point failed)\n";
  } else {
    std::cout << "mean ratio : " << AsciiTable::fmt(summary.mean_ratio) << '\n'
              << "max ratio  : " << AsciiTable::fmt(summary.max_ratio) << '\n';
  }
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_sweep_csv(file, points);
    std::cout << "wrote grid to " << csv_path << '\n';
  }
  return 0;
}

/// `stream --resume`: continues one checkpointed stream to completion. The
/// workload, strategy, and engine options are rebuilt from the embedded
/// manifest — only observability (JSONL, further checkpoints) is tunable.
int stream_resume(const std::string& resume_path, std::int64_t shards,
                  const std::string& jsonl_path, Round snapshot_every,
                  const std::string& checkpoint_dir, Round checkpoint_every,
                  std::int64_t max_rounds) {
  REQSCHED_CHECK_MSG(shards == 1,
                     "--resume continues a single checkpointed stream; each "
                     "shard has its own .ckpt, resume them one at a time");
  ResumedRun rr = load_resume(resume_path);
  EngineOptions eo = rr.engine_options();

  std::optional<JsonlSink> jsonl;
  if (!jsonl_path.empty()) {
    jsonl.emplace(jsonl_path);
    jsonl->write_line(rr.manifest.to_json());
    eo.snapshot_every = snapshot_every;
    eo.snapshot_sink = [&](const StatsSnapshot& snapshot) {
      jsonl->write_line(to_jsonl(snapshot));
    };
    if (eo.track_stream_stats && eo.frame_every > 0) {
      eo.frame_sink = [&](const StatsFrame& frame) {
        jsonl->write_line(to_jsonl(frame));
      };
    }
  }
  if (checkpoint_every > 0) {
    eo.checkpoint_every = checkpoint_every;
    eo.checkpoint_sink = [&](const StreamingEngine& engine) {
      CheckpointManager::save_file(
          checkpoint_path(checkpoint_dir, rr.manifest.shard),
          CheckpointManager::encode(engine, rr.manifest));
    };
  }

  Simulator sim(*rr.workload, *rr.strategy, eo);
  const CheckpointManifest at =
      CheckpointManager::restore(rr.bytes, sim.engine());
  std::cout << "resumed         : " << resume_path << " at round " << at.round
            << '\n';
  const Metrics& metrics = sim.run(at.round + max_rounds);
  if (jsonl) jsonl->write_line(to_jsonl(sim.engine().snapshot()));

  std::cout << "strategy       : " << at.strategy_name << '\n'
            << "workload       : " << at.workload_family << '\n'
            << "rounds         : " << metrics.rounds << '\n'
            << "injected       : " << metrics.injected << '\n'
            << "fulfilled      : " << metrics.fulfilled << '\n'
            << "expired        : " << metrics.expired << '\n'
            << "fulfilled frac : "
            << AsciiTable::fmt(metrics.fulfilled_fraction()) << '\n'
            << "final digest   : " << hex64(state_digest(sim.engine()))
            << '\n';
  if (eo.track_stream_stats) {
    const StatsFrame f = sim.engine().stats_frame();
    std::cout << "loss rate      : " << AsciiTable::fmt(f.loss_rate)
              << "  (window " << AsciiTable::fmt(f.w_loss_rate) << ")\n"
              << "tardiness p50/p99: " << AsciiTable::fmt(f.tardiness_p50)
              << " / " << AsciiTable::fmt(f.tardiness_p99) << '\n';
  }
  if (!jsonl_path.empty()) {
    std::cout << "wrote snapshots to " << jsonl_path << '\n';
  }
  return 0;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// `stream --resume-dir`: the multi-shard counterpart of --resume. Probes
/// shard-0.ckpt, shard-1.ckpt, ... in `dir` until the first missing index,
/// restores every shard from its own checkpoint, and runs them all to
/// completion in parallel. Further checkpoints (--checkpoint-every) rewrite
/// the same shard-<i>.ckpt files, so an interrupted resume resumes again.
int stream_resume_dir(const std::string& dir, std::size_t threads,
                      const std::string& jsonl_path, Round snapshot_every,
                      const std::string& checkpoint_dir, Round checkpoint_every,
                      std::int64_t max_rounds) {
  std::int64_t shards = 0;
  while (file_exists(checkpoint_path(dir, shards))) ++shards;
  REQSCHED_CHECK_MSG(shards > 0, "--resume-dir=" << dir << " holds no "
                                 << checkpoint_path(dir, 0));

  // One shared crash-safe sink: every line is a single O_APPEND write, so
  // concurrent shards interleave whole records, never fragments.
  std::optional<JsonlSink> jsonl;
  if (!jsonl_path.empty()) jsonl.emplace(jsonl_path);

  struct ShardOutcome {
    CheckpointManifest at;
    Metrics metrics{};
    StreamStats stats{};
    std::uint64_t digest = 0;
    std::string error;
  };
  std::vector<ShardOutcome> outcomes(static_cast<std::size_t>(shards));

  ThreadPool pool(threads);
  parallel_for(pool, static_cast<std::size_t>(shards), [&](std::size_t index) {
    ShardOutcome& out = outcomes[index];
    try {
      ResumedRun rr =
          load_resume(checkpoint_path(dir, static_cast<std::int64_t>(index)));
      EngineOptions eo = rr.engine_options();
      if (jsonl) {
        jsonl->write_line(rr.manifest.to_json());
        eo.snapshot_every = snapshot_every;
        eo.snapshot_sink = [&](const StatsSnapshot& snapshot) {
          jsonl->write_line(to_jsonl(snapshot));
        };
        if (eo.track_stream_stats && eo.frame_every > 0) {
          eo.frame_sink = [&](const StatsFrame& frame) {
            jsonl->write_line(to_jsonl(frame));
          };
        }
      }
      if (checkpoint_every > 0) {
        eo.checkpoint_every = checkpoint_every;
        eo.checkpoint_sink = [&](const StreamingEngine& engine) {
          CheckpointManager::save_file(
              checkpoint_path(checkpoint_dir, rr.manifest.shard),
              CheckpointManager::encode(engine, rr.manifest));
        };
      }
      Simulator sim(*rr.workload, *rr.strategy, eo);
      out.at = CheckpointManager::restore(rr.bytes, sim.engine());
      out.metrics = sim.run(out.at.round + max_rounds);
      if (eo.track_stream_stats) out.stats = sim.engine().stream_stats();
      out.digest = state_digest(sim.engine());
      if (jsonl) jsonl->write_line(to_jsonl(sim.engine().snapshot()));
    } catch (const std::exception& e) {
      out.error = e.what();
    }
  });

  Metrics total{};
  StreamStats merged;
  std::int64_t failed = 0;
  for (const ShardOutcome& out : outcomes) {
    if (!out.error.empty()) {
      ++failed;
      continue;
    }
    total.rounds += out.metrics.rounds;
    total.injected += out.metrics.injected;
    total.fulfilled += out.metrics.fulfilled;
    total.expired += out.metrics.expired;
    if (out.stats.active()) {
      if (!merged.active()) {
        merged = out.stats;
      } else {
        merged.merge(out.stats);
      }
    }
  }
  std::cout << "resumed shards : " << shards << " from " << dir << " ("
            << failed << " failed)\n"
            << "rounds         : " << total.rounds << '\n'
            << "injected       : " << total.injected << '\n'
            << "fulfilled      : " << total.fulfilled << '\n'
            << "expired        : " << total.expired << '\n'
            << "fulfilled frac : " << AsciiTable::fmt(total.fulfilled_fraction())
            << '\n';
  for (std::int64_t shard = 0; shard < shards; ++shard) {
    const ShardOutcome& out = outcomes[static_cast<std::size_t>(shard)];
    if (!out.error.empty()) {
      std::cout << "shard " << shard << " FAILED: " << out.error << '\n';
      continue;
    }
    std::cout << "shard " << shard << "        : resumed at round "
              << out.at.round << ", final round " << out.metrics.rounds
              << ", digest " << hex64(out.digest) << '\n';
  }
  if (merged.active()) {
    merged.set_shard(-1);
    const std::int64_t pending =
        total.injected - total.fulfilled - total.expired;
    const StatsFrame f = merged.frame(pending);
    std::cout << "loss rate      : " << AsciiTable::fmt(f.loss_rate)
              << "  (window " << AsciiTable::fmt(f.w_loss_rate) << ")\n"
              << "tardiness p50/p99: " << AsciiTable::fmt(f.tardiness_p50)
              << " / " << AsciiTable::fmt(f.tardiness_p99) << '\n';
    if (jsonl) jsonl->write_line(to_jsonl(f));
  }
  if (!jsonl_path.empty()) {
    std::cout << "wrote snapshots to " << jsonl_path << '\n';
  }
  return failed == 0 ? 0 : 1;
}

int cmd_stream(const CliArgs& args) {
  const auto options = base_options(args);
  const std::string family = args.get_string("workload", "uniform");
  const std::string strategy_name = args.get_string("strategy", "A_balance");
  const bool openloop = is_openloop_family(family);

  ShardedRunOptions run;
  run.shards = args.get_int("shards", 1);
  run.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  run.engine.track_live_opt = args.get_bool("track-ratio", false);
  run.engine.snapshot_every = args.get_int("snapshot-every", 0);
  run.engine.checkpoint_every = args.get_int("checkpoint-every", 0);
  run.engine.frame_every = args.get_int("frame-every", 0);
  run.engine.stream_stats.window = args.get_int("stats-window", 4096);
  // --frame-every implies the streaming-statistics layer; --track-stats
  // turns it on without periodic emission (final frame only).
  run.engine.track_stream_stats =
      args.get_bool("track-stats", run.engine.frame_every > 0);
  run.max_rounds = std::max<std::int64_t>(1'000'000, 2 * options.horizon);
  const double rho = args.get_double("rho", 0.9);
  const std::string jsonl_path = args.get_string("jsonl", "");
  const std::string checkpoint_dir = args.get_string("checkpoint-dir", ".");
  const std::string resume_path = args.get_string("resume", "");
  const std::string resume_dir = args.get_string("resume-dir", "");
  const auto strategy_seed =
      static_cast<std::uint64_t>(args.get_int("strategy-seed", 1));
  args.finish();
  REQSCHED_CHECK_MSG(resume_path.empty() || resume_dir.empty(),
                     "--resume and --resume-dir are mutually exclusive");

  if (!resume_path.empty()) {
    return stream_resume(resume_path, run.shards, jsonl_path,
                         run.engine.snapshot_every, checkpoint_dir,
                         run.engine.checkpoint_every, run.max_rounds);
  }
  if (!resume_dir.empty()) {
    // Unless redirected, further checkpoints rewrite the files being resumed.
    const std::string ckpt_out =
        checkpoint_dir == "." ? resume_dir : checkpoint_dir;
    return stream_resume_dir(resume_dir, run.threads, jsonl_path,
                             run.engine.snapshot_every, ckpt_out,
                             run.engine.checkpoint_every, run.max_rounds);
  }
  require_strategy(strategy_name);

  OpenLoopOptions ol;
  if (openloop) {
    ol.n = options.n;
    ol.d = options.d;
    ol.rho = rho;
    ol.horizon = options.horizon;
    ol.seed = options.seed;
    ol.min_window = options.min_window;
    ol = openloop_preset(family, ol);
  }

  // Crash-safe sink: whole-line O_APPEND writes, never a torn record.
  run.jsonl_path = jsonl_path;
  const auto manifest_for = [&](std::int64_t shard) {
    return stream_manifest(family, options, openloop ? &ol : nullptr,
                           strategy_name, strategy_seed, run.engine, shard);
  };
  run.manifest_line = [&](std::int64_t shard) {
    return manifest_for(shard).to_json();
  };
  if (run.engine.checkpoint_every > 0) {
    run.checkpoint_sink = [&](const StreamingEngine& engine,
                              std::int64_t shard) {
      CheckpointManager::save_file(
          checkpoint_path(checkpoint_dir, shard),
          CheckpointManager::encode(engine, manifest_for(shard)));
    };
  }

  const auto result = run_sharded(
      run,
      [&](std::int64_t shard) -> std::unique_ptr<IWorkload> {
        if (openloop) {
          OpenLoopOptions shard_ol = ol;
          shard_ol.seed = ol.seed + static_cast<std::uint64_t>(shard);
          return std::make_unique<OpenLoopWorkload>(shard_ol, family);
        }
        auto shard_options = options;
        shard_options.seed =
            options.seed + static_cast<std::uint64_t>(shard);
        return make_workload(family, shard_options);
      },
      [&](std::int64_t shard) {
        return make_strategy(strategy_name,
                             strategy_seed + static_cast<std::uint64_t>(shard));
      });

  std::cout << "strategy       : " << strategy_name << '\n'
            << "workload       : " << family << '\n'
            << "shards         : " << run.shards << " (" << result.failed
            << " failed)\n"
            << "rounds         : " << result.total.rounds << '\n'
            << "injected       : " << result.total.injected << '\n'
            << "fulfilled      : " << result.total.fulfilled << '\n'
            << "expired        : " << result.total.expired << '\n'
            << "fulfilled frac : "
            << AsciiTable::fmt(result.total.fulfilled_fraction()) << '\n'
            << "peak pending   : " << result.peak_pending << '\n';
  if (run.engine.track_live_opt) {
    double worst = 0.0;
    for (const auto& shard : result.shards) {
      if (shard.ok()) worst = std::max(worst, shard.last_snapshot.live_ratio);
    }
    std::cout << "worst ratio    : " << AsciiTable::fmt(worst) << '\n';
  }
  if (result.merged_stats.active()) {
    const std::int64_t pending =
        result.total.injected - result.total.fulfilled - result.total.expired;
    const StatsFrame f = result.merged_stats.frame(pending);
    std::cout << "loss rate      : " << AsciiTable::fmt(f.loss_rate)
              << "  (window " << AsciiTable::fmt(f.w_loss_rate) << ")\n"
              << "tardiness p50/p99: " << AsciiTable::fmt(f.tardiness_p50)
              << " / " << AsciiTable::fmt(f.tardiness_p99) << '\n';
  }
  for (const auto& shard : result.shards) {
    if (!shard.ok()) {
      std::cout << "shard " << shard.shard << " FAILED: " << shard.error
                << '\n';
    }
  }
  if (!jsonl_path.empty()) {
    std::cout << "wrote snapshots to " << jsonl_path << '\n';
  }
  if (run.engine.checkpoint_every > 0) {
    std::cout << "checkpoints in " << checkpoint_path(checkpoint_dir, 0);
    if (run.shards > 1) {
      std::cout << " .. " << checkpoint_path(checkpoint_dir, run.shards - 1);
    }
    std::cout << '\n';
  }
  return result.all_ok() ? 0 : 1;
}

/// Deterministic replay from a checkpoint: rebuilds the run from the
/// embedded manifest, restores, and re-executes — optionally auditing every
/// round and printing state digests to bisect a suspected divergence (two
/// replays of the same checkpoint print identical digest sequences; compare
/// against a digest log from the original run to find the first bad round).
int cmd_replay(const CliArgs& args) {
  const std::string resume_path = args.get_string("resume", "");
  const auto to_round = args.get_int("to-round", -1);
  const bool audit = args.get_bool("audit", false);
  const auto digest_every = args.get_int("digest-every", 0);
  args.finish();
  REQSCHED_CHECK_MSG(!resume_path.empty(),
                     "replay needs --resume=<checkpoint file>");

  ResumedRun rr = load_resume(resume_path);
  Simulator sim(*rr.workload, *rr.strategy, rr.engine_options());
  const CheckpointManifest at =
      CheckpointManager::restore(rr.bytes, sim.engine());
  REQSCHED_CHECK_MSG(to_round < 0 || to_round >= at.round,
                     "--to-round=" << to_round
                                   << " precedes the checkpoint round "
                                   << at.round);
  std::cout << at.to_json() << '\n'
            << "restored round " << at.round << " digest "
            << hex64(state_digest(sim.engine())) << '\n';

  while ((to_round < 0 || sim.metrics().rounds < to_round) && sim.step()) {
    if (audit) sim.engine().audit_check();
    if (digest_every > 0 && sim.metrics().rounds % digest_every == 0) {
      std::cout << "round " << sim.metrics().rounds << " digest "
                << hex64(state_digest(sim.engine())) << '\n';
    }
  }

  const Metrics& metrics = sim.metrics();
  std::cout << "final round " << metrics.rounds << " digest "
            << hex64(state_digest(sim.engine())) << '\n'
            << "injected " << metrics.injected << ", fulfilled "
            << metrics.fulfilled << ", expired " << metrics.expired << '\n';
  return 0;
}

int usage() {
  std::cout << "usage: reqsched_cli <list|bounds|run|sweep|stream|replay> "
               "[--flags]\n"
               "run 'reqsched_cli run --strategy=A_balance "
               "--workload=blockstorm --timeline' for a taste\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const CliArgs args(argc - 1, argv + 1);
    if (command == "list") return cmd_list();
    if (command == "bounds") return cmd_bounds(args);
    if (command == "run") return cmd_run(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "stream") return cmd_stream(args);
    if (command == "replay") return cmd_replay(args);
  } catch (const ContractViolation& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
