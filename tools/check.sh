#!/usr/bin/env bash
# Tier-1 gate. The default runs every build-and-test preset: a plain
# RelWithDebInfo build+ctest, the same suite under AddressSanitizer + UBSan,
# and under ThreadSanitizer (sharded runner / thread-pool paths). Further
# modes cover the static-analysis gate, the deep invariant-audit build, an
# alternate-compiler build, and the performance gates. Run from the
# repository root:
#
#   tools/check.sh                # plain + asan + tsan + ubsan passes
#   tools/check.sh --plain        # plain pass only
#   tools/check.sh --asan         # ASan + UBSan pass only
#   tools/check.sh --tsan         # ThreadSanitizer pass only
#   tools/check.sh --ubsan        # UBSan-alone pass only (what ASan's
#                                 # combined pass can mask, minus its runtime)
#   tools/check.sh --lint         # reqsched_lint + clang-tidy build (the
#                                 # tidy half is skipped with a notice when
#                                 # no clang-tidy binary is installed)
#   tools/check.sh --audit        # REQSCHED_AUDIT=ON build + full ctest:
#                                 # every mutation of the delta-maintained
#                                 # structures re-verified against naive
#                                 # models (slow; the `audit` CI job)
#   tools/check.sh --clang        # plain pass built with clang++, which
#                                 # also enforces the thread-safety
#                                 # annotations (-Werror=thread-safety, see
#                                 # src/util/thread_annotations.hpp); skipped
#                                 # with a notice when clang++ is missing
#   tools/check.sh --bench-smoke  # Release build; bench_perf + bench_stream
#                                 # gates (--smoke) and a short
#                                 # bench_prefix_opt run
set -euo pipefail

cd "$(dirname "$0")/.."

# One preset per sanitized tier-1 pass: "<label>:<build dir>:<cmake flag>".
# `all` iterates the plain entry plus every entry here, so a new sanitizer
# preset lands in the default gate and in its dedicated mode by editing one
# list.
SANITIZER_PRESETS=(
  "asan+ubsan:build-asan:-DREQSCHED_SANITIZE=ON"
  "tsan:build-tsan:-DREQSCHED_SANITIZE=thread"
  "ubsan:build-ubsan:-DREQSCHED_SANITIZE=undefined"
)

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "==> ${label}: configure (${dir})"
  cmake -B "${dir}" -S . "$@"
  echo "==> ${label}: build"
  cmake --build "${dir}" -j
  echo "==> ${label}: ctest"
  (cd "${dir}" && ctest --output-on-failure -j "$(nproc)")
}

run_sanitizer_preset() {
  local wanted="$1" preset label dir flag
  for preset in "${SANITIZER_PRESETS[@]}"; do
    IFS=: read -r label dir flag <<<"${preset}"
    if [[ "${label}" == "${wanted}"* ]]; then
      run_pass "${label}" "${dir}" "${flag}"
      return
    fi
  done
  echo "unknown sanitizer preset: ${wanted}" >&2
  exit 2
}

run_lint() {
  echo "==> lint: reqsched_lint (layering / header hygiene / contract gating)"
  tools/lint/reqsched_lint --root .
  echo "==> lint: reqsched_lint self-tests"
  python3 tools/lint/test_reqsched_lint.py
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> lint: clang-tidy build (REQSCHED_CLANG_TIDY=ON, warnings as errors)"
    cmake -B build-tidy -S . -DREQSCHED_CLANG_TIDY=ON
    cmake --build build-tidy -j
  else
    echo "==> lint: clang-tidy not installed; skipping the tidy half" \
         "(the lint CI job runs it)"
  fi
}

run_audit() {
  run_pass "audit" build-audit -DREQSCHED_AUDIT=ON
  run_checkpoint_label "audit" build-audit
  run_stationary_label "audit" build-audit
}

# The checkpoint/restore suite as its own visible gate: bit-identity
# round-trips, crash-resume fuzz, and corruption rejection, re-run under the
# pass's instrumentation (ASan catches decode-phase overreads on corrupted
# images; the audit build re-verifies every restored structure).
run_checkpoint_label() {
  local label="$1" dir="$2"
  echo "==> ${label}: checkpoint suite (ctest -L checkpoint)"
  (cd "${dir}" && ctest --output-on-failure --no-tests=error -L checkpoint)
}

# The streaming-statistics + open-loop suite as its own visible gate: sketch
# exactness/merge bounds, the differential pins against whole-trace Metrics,
# and rho-calibration of the stationary generators.
run_stationary_label() {
  local label="$1" dir="$2"
  echo "==> ${label}: stationary suite (ctest -L stationary)"
  (cd "${dir}" && ctest --output-on-failure --no-tests=error -L stationary)
}

# The clang pass doubles as the lock-discipline gate: the top-level
# CMakeLists adds -Wthread-safety -Werror=thread-safety on clang, so an
# access to REQSCHED_GUARDED_BY state outside its mutex fails this build.
run_clang() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "==> clang: clang++ not installed; skipping" \
         "(the clang CI job runs it)"
    return
  fi
  CC=clang CXX=clang++ run_pass "clang" build-clang
}

run_bench_smoke() {
  local dir="build-bench"
  echo "==> bench-smoke: configure (${dir})"
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release -DREQSCHED_BUILD_TESTS=OFF
  echo "==> bench-smoke: build"
  cmake --build "${dir}" -j --target bench_perf bench_prefix_opt bench_stream
  echo "==> bench-smoke: bench_perf gates (offline-solve + strategy-step speedups, sweep throughput)"
  # The empty-match filter skips the microbenchmarks; the gated sections
  # after RunSpecifiedBenchmarks() always run. The JSON lands at the repo
  # root so CI can upload it as the PR's perf artifact.
  "${dir}/bench/bench_perf" --smoke '--benchmark_filter=^$' \
      "--json=BENCH_latest.json"
  echo "==> bench-smoke: bench_stream gates (window bound, memory plateau, throughput, fast path)"
  "${dir}/bench/bench_stream" --smoke "--json-append=BENCH_latest.json"
  echo "==> bench-smoke: BENCH_latest.json section check"
  # The merged artifact must carry both benches' gated sections — a bench
  # that silently stopped recording would otherwise still upload fine.
  python3 - <<'EOF'
import json
rows = json.load(open("BENCH_latest.json"))
sections = {row["section"] for row in rows}
missing = {"strategy_step", "stream", "capacitated", "checkpoint",
           "manifest", "stationary"} - sections
assert not missing, f"BENCH_latest.json is missing sections: {sorted(missing)}"
print(f"BENCH_latest.json: {len(rows)} records, sections {sorted(sections)}")
EOF
  echo "==> bench-smoke: bench_prefix_opt (reduced iterations)"
  "${dir}/bench/bench_prefix_opt" --rounds=2000 --samples=3
}

mode="${1:-all}"

case "${mode}" in
  all|--all)
    run_pass "plain" build
    for preset in "${SANITIZER_PRESETS[@]}"; do
      IFS=: read -r label dir flag <<<"${preset}"
      run_pass "${label}" "${dir}" "${flag}"
    done
    ;;
  --plain)
    run_pass "plain" build
    ;;
  --asan)
    run_sanitizer_preset "asan"
    run_checkpoint_label "asan+ubsan" build-asan
    run_stationary_label "asan+ubsan" build-asan
    ;;
  --tsan)
    run_sanitizer_preset "tsan"
    ;;
  --ubsan)
    run_sanitizer_preset "ubsan"
    ;;
  --lint)
    run_lint
    ;;
  --audit)
    run_audit
    ;;
  --clang)
    run_clang
    ;;
  --bench-smoke)
    run_bench_smoke
    ;;
  *)
    echo "usage: tools/check.sh [--plain|--asan|--tsan|--ubsan|--lint|--audit|--clang|--bench-smoke]" >&2
    exit 2
    ;;
esac

echo "==> all requested passes green"
