#!/usr/bin/env bash
# Tier-1 gate, run twice: a plain RelWithDebInfo build+ctest, then the same
# suite under AddressSanitizer + UBSan (REQSCHED_SANITIZE=ON). Run from the
# repository root:
#
#   tools/check.sh            # both passes
#   tools/check.sh --plain    # plain pass only
#   tools/check.sh --asan     # sanitized pass only
set -euo pipefail

cd "$(dirname "$0")/.."

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "==> ${label}: configure (${dir})"
  cmake -B "${dir}" -S . "$@"
  echo "==> ${label}: build"
  cmake --build "${dir}" -j
  echo "==> ${label}: ctest"
  (cd "${dir}" && ctest --output-on-failure -j "$(nproc)")
}

mode="${1:-all}"

case "${mode}" in
  all|--all)
    run_pass "plain" build
    run_pass "asan+ubsan" build-asan -DREQSCHED_SANITIZE=ON
    ;;
  --plain)
    run_pass "plain" build
    ;;
  --asan)
    run_pass "asan+ubsan" build-asan -DREQSCHED_SANITIZE=ON
    ;;
  *)
    echo "usage: tools/check.sh [--plain|--asan]" >&2
    exit 2
    ;;
esac

echo "==> all requested passes green"
