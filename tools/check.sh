#!/usr/bin/env bash
# Tier-1 gate, run twice: a plain RelWithDebInfo build+ctest, then the same
# suite under AddressSanitizer + UBSan (REQSCHED_SANITIZE=ON). A third mode
# smoke-runs the performance gates. Run from the repository root:
#
#   tools/check.sh                # plain + sanitized passes
#   tools/check.sh --plain        # plain pass only
#   tools/check.sh --asan         # ASan + UBSan pass only
#   tools/check.sh --tsan         # ThreadSanitizer pass only (sharded runner
#                                 # / thread-pool paths)
#   tools/check.sh --bench-smoke  # Release build; bench_perf + bench_stream
#                                 # gates (--smoke) and a short
#                                 # bench_prefix_opt run
set -euo pipefail

cd "$(dirname "$0")/.."

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "==> ${label}: configure (${dir})"
  cmake -B "${dir}" -S . "$@"
  echo "==> ${label}: build"
  cmake --build "${dir}" -j
  echo "==> ${label}: ctest"
  (cd "${dir}" && ctest --output-on-failure -j "$(nproc)")
}

run_bench_smoke() {
  local dir="build-bench"
  echo "==> bench-smoke: configure (${dir})"
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release -DREQSCHED_BUILD_TESTS=OFF
  echo "==> bench-smoke: build"
  cmake --build "${dir}" -j --target bench_perf bench_prefix_opt bench_stream
  echo "==> bench-smoke: bench_perf gates (offline-solve + strategy-step speedups, sweep throughput)"
  # The empty-match filter skips the microbenchmarks; the gated sections
  # after RunSpecifiedBenchmarks() always run. The JSON lands at the repo
  # root so CI can upload it as the PR's perf artifact.
  "${dir}/bench/bench_perf" --smoke '--benchmark_filter=^$' \
      "--json=BENCH_PR4.json"
  echo "==> bench-smoke: bench_stream gates (window bound, memory plateau, throughput)"
  "${dir}/bench/bench_stream" --smoke "--json=${dir}/BENCH_stream.json"
  echo "==> bench-smoke: bench_prefix_opt (reduced iterations)"
  "${dir}/bench/bench_prefix_opt" --rounds=2000 --samples=3
}

mode="${1:-all}"

case "${mode}" in
  all|--all)
    run_pass "plain" build
    run_pass "asan+ubsan" build-asan -DREQSCHED_SANITIZE=ON
    ;;
  --plain)
    run_pass "plain" build
    ;;
  --asan)
    run_pass "asan+ubsan" build-asan -DREQSCHED_SANITIZE=ON
    ;;
  --tsan)
    run_pass "tsan" build-tsan -DREQSCHED_SANITIZE=thread
    ;;
  --bench-smoke)
    run_bench_smoke
    ;;
  *)
    echo "usage: tools/check.sh [--plain|--asan|--tsan|--bench-smoke]" >&2
    exit 2
    ;;
esac

echo "==> all requested passes green"
