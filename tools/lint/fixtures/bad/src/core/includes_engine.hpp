#pragma once

#include "engine/simulator.hpp"
