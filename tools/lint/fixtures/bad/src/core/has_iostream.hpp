#pragma once

#include <iostream>
