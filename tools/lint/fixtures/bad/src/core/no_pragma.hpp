// A header comment is fine, but the first code line is not #pragma once.
namespace reqsched {}
