#pragma once

using namespace std;
