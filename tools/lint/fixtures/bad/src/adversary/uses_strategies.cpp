#include "strategies/global.hpp"
