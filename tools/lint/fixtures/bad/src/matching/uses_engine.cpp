#include "engine/request_pool.hpp"
