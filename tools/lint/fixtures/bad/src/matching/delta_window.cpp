void audit_sweep(int n) {
  for (int i = 0; i < n; ++i) {
    REQSCHED_REQUIRE(i >= 0);
  }
}
