// Whole-trace accumulation in the streaming engine: a member container that
// grows every round and is never shrunk anywhere in the file. On an
// open-loop 10^8-round run this is an unbounded leak.
void StreamingEngine::note_retired(RequestId id, Round at) {
  retired_ids_.push_back(id);
  retired_rounds_[0].emplace_back(at);
}
