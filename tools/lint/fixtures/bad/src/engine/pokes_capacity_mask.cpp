// Reaches into the delta window's raw saturation overlay from the engine
// layer instead of probing through the public API.
std::uint64_t peek_saturation(DeltaWindowProblem& w) {
  return w.res_free_[0] & ~w.res_claimed_[0];
}
std::int32_t peek_count(DeltaWindowProblem& w) { return w.free_count_[0]; }
