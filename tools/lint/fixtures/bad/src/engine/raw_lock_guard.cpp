#include "engine/raw_lock_guard.hpp"

namespace reqsched {

// thread-guards: raw std::lock_guard — an acquisition the annotation-based
// analysis cannot see, so every guarded access under it still warns (or
// worse, is silently unchecked).
void Fanin::add(int delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  total_ += delta;
}

}  // namespace reqsched
