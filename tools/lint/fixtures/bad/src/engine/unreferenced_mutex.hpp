#pragma once

namespace reqsched {

// thread-guards: a mutex member that no REQSCHED_GUARDED_BY references —
// the thread-safety analysis has nothing to check, so the lock guards
// nothing it can prove.
class Fanin {
 public:
  void add(int delta);

 private:
  std::mutex mutex_;
  int total_ = 0;
};

}  // namespace reqsched
