// BAD: engine code reaching for the snapshot layer's codec machinery.
// Serialization lives in src/snapshot; the engine exposes state to it via
// the friend grant, never the other way around.
#include "engine/streaming.hpp"

namespace reqsched {

void leak_bytes(const StreamingEngine& engine) {
  SnapshotWriter w;  // snapshot-layer: codec named outside src/snapshot
  (void)engine;
  (void)w;
}

}  // namespace reqsched
