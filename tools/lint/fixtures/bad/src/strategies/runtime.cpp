void validate_batch(int count) {
  for (int id = 0; id < count; ++id) {
    REQSCHED_REQUIRE_MSG(id >= 0, "corrupt batch id");
  }
}
