// Reads the per-resource capacity vector raw instead of going through
// ProblemConfig::capacity_of()/max_capacity().
std::int32_t first_capacity(const ProblemConfig& config) {
  return config.capacities.empty() ? config.b : config.capacities[0];
}
