#pragma once

#include "adversary/blocks.hpp"
