#pragma once
// Gate pattern broken: debug checks silently follow NDEBUG only.
#if !defined(NDEBUG)
#define REQSCHED_DEBUG_CHECKS 1
#endif
