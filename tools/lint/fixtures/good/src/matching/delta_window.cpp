void audit_sweep(int n) {
#ifdef REQSCHED_DEBUG_CHECKS
  for (int i = 0; i < n; ++i) {
    REQSCHED_REQUIRE(i >= 0);
  }
#endif
  // A working loop containing a contract check is not a validation sweep:
  for (int i = 0; i < n; ++i) {
    REQSCHED_REQUIRE(i >= 0);
    do_work(i);
  }
  // Mentions in comments/strings never count:
  // for (...) { REQSCHED_REQUIRE(false); }
  const char* s = "assert(never flagged) using namespace";
  (void)s;
}
