void audit_sweep(int n) {
#ifdef REQSCHED_DEBUG_CHECKS
  for (int i = 0; i < n; ++i) {
    REQSCHED_REQUIRE(i >= 0);
  }
#endif
  // A working loop containing a contract check is not a validation sweep:
  for (int i = 0; i < n; ++i) {
    REQSCHED_REQUIRE(i >= 0);
    do_work(i);
  }
  // Mentions in comments/strings never count:
  // for (...) { REQSCHED_REQUIRE(false); }
  const char* s = "assert(never flagged) using namespace";
  (void)s;
}
// The delta window owns the raw capacity state, so naming the count arrays
// and saturation overlays here is fine.
std::int32_t saturate(DeltaWindowProblem& w, std::size_t cell) {
  if (--w.free_count_[cell] == 0) w.res_free_[cell / 64] &= ~(1ull << (cell % 64));
  return w.claim_count_[cell];
}
