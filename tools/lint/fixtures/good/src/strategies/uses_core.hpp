#pragma once

#include "core/proposal.hpp"
#include "engine/simulator.hpp"
