#pragma once

#if !defined(REQSCHED_DEBUG_CHECKS) && !defined(NDEBUG)
#define REQSCHED_DEBUG_CHECKS 1
#endif
