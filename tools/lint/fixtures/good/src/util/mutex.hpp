#pragma once

#include <mutex>

namespace reqsched {

// The wrapper-owner carve-out: src/util/mutex.hpp is the one src/ file
// allowed to hold a raw std::mutex member (and name the raw std:: locking
// vocabulary) without thread-guards findings — it IS the annotated wrapper.
class Mutex {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

}  // namespace reqsched
