// GOOD: the one sanctioned crossing — the exact friend-grant line that lets
// the snapshot layer serialize private state. Nothing else snapshot-shaped
// is named here.
#pragma once

namespace reqsched {

class CheckpointedThing {
 public:
  int value() const { return value_; }

 private:
  friend struct SnapshotAccess;

  int value_ = 0;
};

}  // namespace reqsched
