// Bounded member growth in the streaming layer: every container that grows
// also has a shrink site in this file, and a deliberately-retained history
// carries the explicit waiver comment.
void StreamStats::stage(double value) {
  scratch_.push_back(value);
  compact_buf_[0].emplace_back(value);
}

void StreamStats::flush() {
  scratch_.clear();
  compact_buf_[0].resize(0);
  audit_log_.push_back(0);  // reqsched-lint: allow(stream-accumulation)
}
