#pragma once

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace reqsched {

// Clean thread-guards usage: the annotated wrapper Mutex, with every piece
// of cross-thread state REQSCHED_GUARDED_BY it, and a waived legacy member
// showing the escape hatch.
class Fanin {
 public:
  void add(int delta) REQSCHED_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    total_ += delta;
  }

 private:
  Mutex mutex_;
  int total_ REQSCHED_GUARDED_BY(mutex_) = 0;
  std::mutex external_;  // owned by a C API // reqsched-lint: allow(thread-guards)
};

}  // namespace reqsched
