// Outside the owning layer, capacity is read through the ProblemConfig
// accessors — never the raw vector or the window's mask arrays.
std::int64_t ring_units(const ProblemConfig& config) {
  std::int64_t total = 0;
  for (ResourceId r = 0; r < config.n; ++r) total += config.capacity_of(r);
  return total * config.max_capacity();
}
