#include "core/proposal.hpp"
#include "engine/simulator.hpp"
