// Comments (and blank lines) before the pragma are fine.

#pragma once

#include <ostream>
#include <vector>

#include "core/types.hpp"
