#include <cassert>

void f(int x) { assert(x > 0); }  // reqsched-lint: allow(no-raw-assert)
