#!/usr/bin/env python3
"""Unit tests for reqsched_lint: every rule exercised against a violating
fixture and a conforming one (tools/lint/fixtures/{bad,good})."""

import io
import json
import os
import sys
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import reqsched_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def run_lint(root, paths=()):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = reqsched_lint.main(["--root", root, *paths])
    return code, out.getvalue(), err.getvalue()


class BadFixtures(unittest.TestCase):
    """Each bad fixture triggers exactly the rule it was written for."""

    @classmethod
    def setUpClass(cls):
        cls.code, cls.out, cls.err = run_lint(os.path.join(FIXTURES, "bad"))

    def assert_finding(self, path, rule):
        needle = f"{path}:"
        hits = [l for l in self.out.splitlines()
                if l.startswith(needle) and f"[{rule}]" in l]
        self.assertTrue(hits, f"expected [{rule}] finding in {path}; "
                              f"got:\n{self.out}")

    def test_exit_code(self):
        self.assertEqual(self.code, 1)

    def test_layering_strategies_to_adversary(self):
        self.assert_finding("src/strategies/uses_adversary.hpp", "layering")

    def test_layering_adversary_to_strategies(self):
        self.assert_finding("src/adversary/uses_strategies.cpp", "layering")

    def test_layering_core_upward(self):
        self.assert_finding("src/core/includes_engine.hpp", "layering")

    def test_layering_matching_engine_independent(self):
        self.assert_finding("src/matching/uses_engine.cpp", "layering")

    def test_pragma_once(self):
        self.assert_finding("src/core/no_pragma.hpp", "pragma-once")

    def test_header_iostream(self):
        self.assert_finding("src/core/has_iostream.hpp", "header-iostream")

    def test_header_using_namespace(self):
        self.assert_finding("src/core/has_using_namespace.hpp",
                            "header-using-ns")

    def test_debug_macro_definition_outside_owner(self):
        self.assert_finding("src/core/defines_gate.cpp", "debug-macro-def")

    def test_broken_ndebug_gate(self):
        self.assert_finding("src/util/assert.hpp", "debug-macro-def")

    def test_raw_assert(self):
        self.assert_finding("src/core/raw_assert.cpp", "no-raw-assert")

    def test_unguarded_validation_loop_in_hot_file(self):
        self.assert_finding("src/matching/delta_window.cpp", "hot-loop-guard")

    def test_unguarded_validation_loop_in_strategy_runtime(self):
        self.assert_finding("src/strategies/runtime.cpp", "hot-loop-guard")

    def test_capacity_mask_touched_outside_owner(self):
        self.assert_finding("src/engine/pokes_capacity_mask.cpp",
                            "capacity-internals")

    def test_raw_capacities_vector_outside_owner(self):
        self.assert_finding("src/strategies/raw_capacities.cpp",
                            "capacity-internals")

    def test_snapshot_codec_named_outside_snapshot_layer(self):
        self.assert_finding("src/engine/names_snapshot_codec.cpp",
                            "snapshot-layer")

    def test_unshrunk_member_growth_in_streaming_layer(self):
        self.assert_finding("src/engine/streaming.cpp",
                            "stream-accumulation")

    def test_mutex_member_without_guarded_by(self):
        self.assert_finding("src/engine/unreferenced_mutex.hpp",
                            "thread-guards")

    def test_raw_lock_guard_outside_wrapper(self):
        self.assert_finding("src/engine/raw_lock_guard.cpp",
                            "thread-guards")

    def test_every_bad_fixture_fires(self):
        flagged = {l.split(":", 1)[0] for l in self.out.splitlines()
                   if ": [" in l}
        bad_root = os.path.join(FIXTURES, "bad")
        all_bad = set()
        for dirpath, _, files in os.walk(bad_root):
            for fn in files:
                rel = os.path.relpath(os.path.join(dirpath, fn), bad_root)
                all_bad.add(rel.replace(os.sep, "/"))
        self.assertEqual(flagged, all_bad,
                         "every bad fixture must produce a finding")


class GoodFixtures(unittest.TestCase):
    def test_good_tree_is_clean(self):
        code, out, err = run_lint(os.path.join(FIXTURES, "good"))
        self.assertEqual(code, 0, f"good fixtures must be clean:\n{out}{err}")


class RealTree(unittest.TestCase):
    def test_repository_is_clean(self):
        repo = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        code, out, err = run_lint(repo)
        self.assertEqual(code, 0, f"repository must lint clean:\n{out}{err}")


class JsonFormat(unittest.TestCase):
    def test_bad_tree_emits_finding_objects(self):
        code, out, err = run_lint(os.path.join(FIXTURES, "bad"),
                                  ["--format", "json"])
        self.assertEqual(code, 1)
        rows = json.loads(out)
        self.assertTrue(rows, "bad tree must produce JSON findings")
        for row in rows:
            self.assertEqual(sorted(row), ["file", "line", "message", "rule"])
            self.assertIsInstance(row["line"], int)
        self.assertIn("thread-guards", {r["rule"] for r in rows})

    def test_good_tree_emits_empty_array(self):
        code, out, err = run_lint(os.path.join(FIXTURES, "good"),
                                  ["--format", "json"])
        self.assertEqual(code, 0)
        self.assertEqual(json.loads(out), [])


class Mechanics(unittest.TestCase):
    def test_strip_comments_preserves_lines(self):
        text = 'a /* x\n y */ b // c\n"s//t"\n'
        stripped = reqsched_lint.strip_comments(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertNotIn("//", stripped.replace('"', ""))

    def test_split_statements(self):
        stmts = reqsched_lint.split_statements(
            "REQSCHED_REQUIRE(a); f(b, {1, 2}); REQSCHED_CHECK(c)")
        self.assertEqual(len(stmts), 3)

    def test_unknown_root_is_usage_error(self):
        code, _, _ = run_lint(os.path.join(FIXTURES, "does-not-exist"))
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
