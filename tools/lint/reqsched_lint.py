#!/usr/bin/env python3
"""reqsched_lint — repo-specific source rules clang-tidy cannot express.

Rules (see docs/static_analysis.md for the full catalogue):

  layering            src/<layer>/ files may only include project headers
                      from layers at or below their own. In particular the
                      strategies/local layers and the adversary layer are
                      mutually invisible (the paper's information-flow
                      firewall), and core includes nothing above itself.
  pragma-once         every header starts with `#pragma once` (before any
                      non-comment code).
  header-iostream     library headers (src/**/*.hpp) must not include
                      <iostream> — keep stream globals (and their static
                      initializers) out of every translation unit.
  header-using-ns     no `using namespace` at any scope in any header.
  debug-macro-def     only src/util/assert.hpp may define, undefine, or
                      redefine the REQSCHED_DEBUG_* / REQSCHED_AUDIT* gating
                      macros, and its NDEBUG gate must stay intact — this is
                      what guarantees debug/audit assertions are compiled out
                      of release builds.
  hot-loop-guard      in the delta-window/ring hot files, a loop whose body
                      is nothing but contract-macro statements (an O(n)
                      validation sweep) must sit inside an
                      `#ifdef REQSCHED_DEBUG_CHECKS` or REQSCHED_AUDIT
                      region, so release hot loops never pay for it.
  no-raw-assert       src/ uses the REQSCHED_* contract macros, never
                      assert() (assert is silent under NDEBUG; contract
                      violations must never pass silently).
  capacity-internals  the raw capacity state of the generalized model is
                      owned by the delta-window/slot-graph layer: the
                      free/claim count arrays and their saturation mask
                      overlays (free_count_, claim_count_, res_free_,
                      res_claimed_) may only be named there, and the
                      per-resource `capacities` vector of ProblemConfig may
                      only be read raw by its owners (types.hpp, the trace
                      and checkpoint-manifest serializers,
                      delta_window/slot_graph) — everyone else goes through
                      capacity_of()/max_capacity() so a future
                      representation change stays a two-file edit.
  snapshot-layer      serialization internals stay in src/snapshot: the
                      codec types (SnapshotWriter/SnapshotReader) and the
                      SnapshotAccess backdoor may not be named anywhere
                      else under src/ — the only sanctioned crossing is
                      the exact `friend struct SnapshotAccess;` grant line
                      inside a checkpointed class. Keeps every byte-format
                      decision (and the private-state reach it needs) in
                      one reviewable directory.
  stream-accumulation the streaming engine and its stats layer are O(1)
                      memory in the horizon: a member container
                      (`name_.push_back/emplace_back`) that grows in
                      src/engine/streaming.* or src/engine/stream_stats.*
                      must be shrunk somewhere in the same file
                      (clear/erase/resize/pop_back/assign/swap or
                      reassignment) — otherwise it is whole-trace
                      accumulation hiding in the round loop.
  thread-guards       lock discipline is compiler-checked (clang
                      -Werror=thread-safety over the annotations in
                      util/thread_annotations.hpp), which only works when
                      locks go through the annotated wrappers: every
                      std::mutex/Mutex member in src/ must be referenced by
                      at least one REQSCHED_GUARDED_BY /
                      REQSCHED_PT_GUARDED_BY in the same file (a mutex
                      guarding nothing is a mutex the analysis cannot
                      check), and raw std::lock_guard / std::unique_lock /
                      std::scoped_lock are banned in src/ outside
                      util/mutex.hpp — use reqsched::MutexLock, which the
                      analysis understands.

A finding can be waived for one line with a trailing
`// reqsched-lint: allow(<rule>)` comment.

Output is human-readable text by default; `--format=json` emits a JSON
array of {rule, file, line, message} objects (CI turns these into GitHub
problem-matcher annotations).

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule configuration
# ---------------------------------------------------------------------------

# Allowed project-include targets per src/ layer. A layer may always include
# itself; the firewall rules are the *absences*: strategies/local never see
# adversary, adversary never sees strategies/local, core sees nothing above
# itself, matching stays engine-independent.
LAYER_ALLOWED = {
    "util": set(),
    "core": {"util"},
    "matching": {"core", "util"},
    "engine": {"matching", "core", "util"},
    "offline": {"matching", "core", "util"},
    "strategies": {"engine", "matching", "core", "util"},
    "local": {"strategies", "engine", "matching", "core", "util"},
    "adversary": {"engine", "matching", "core", "util"},
    # The snapshot layer serializes engine + workload state; it sees the
    # structures it checkpoints but nothing strategy- or analysis-shaped.
    "snapshot": {"adversary", "engine", "matching", "core", "util"},
    "analysis": {
        "adversary", "local", "strategies", "offline", "engine", "matching",
        "core", "util",
    },
}

# Files whose inner loops are the measured hot paths of the delta-maintained
# window structures; validation-only loops here must be compiled out of
# release builds.
HOT_FILES = (
    "src/matching/delta_window.cpp",
    "src/matching/delta_window.hpp",
    "src/engine/request_pool.cpp",
    "src/engine/request_pool.hpp",
    "src/engine/streaming.cpp",
    "src/engine/windowed_opt.cpp",
    # The strategy runtime sits between the admission fast path and the
    # matcher: its per-round loops are on the same measured path.
    "src/strategies/runtime.cpp",
)

# Owners of the raw capacity representation. Only these files may name the
# free/claim count arrays and saturation mask overlays; every other layer
# probes capacity through the DeltaWindowProblem / SlotGraph public API.
CAPACITY_MASK_OWNERS = {
    "src/matching/delta_window.cpp",
    "src/matching/delta_window.hpp",
    "src/matching/slot_graph.cpp",
    "src/matching/slot_graph.hpp",
}
CAPACITY_MASK_RE = re.compile(
    r"\b(res_free_|res_claimed_|free_count_|claim_count_)\b")
# Files that may read ProblemConfig::capacities directly (the defining
# header, the trace serializer, and the mask owners); all other src/ code
# must use capacity_of() / max_capacity() / unit_capacity().
CAPACITY_VECTOR_OWNERS = CAPACITY_MASK_OWNERS | {
    "src/core/types.hpp",
    "src/core/trace.cpp",
    # The checkpoint manifest serializes ProblemConfig verbatim — a
    # representation owner for the same reason the trace serializer is.
    "src/snapshot/manifest.cpp",
}
CAPACITY_VECTOR_RE = re.compile(r"\bcapacities\b")

# Snapshot-layer machinery: the codec types and the private-state backdoor.
# Outside src/snapshot these may appear only as the exact friend-grant line.
SNAPSHOT_LAYER_DIR = "src/snapshot/"
SNAPSHOT_TYPES_RE = re.compile(
    r"\b(SnapshotWriter|SnapshotReader|SnapshotAccess)\b")
SNAPSHOT_FRIEND_GRANT = "friend struct SnapshotAccess;"

# The only file allowed to (un)define the assertion-gating macros.
GATE_OWNER = "src/util/assert.hpp"
GATED_MACROS = re.compile(
    r"#\s*(?:define|undef)\s+(REQSCHED_DEBUG_CHECKS|REQSCHED_DEBUG_REQUIRE"
    r"(?:_MSG)?|REQSCHED_AUDIT(?:_ENABLED|_REQUIRE(?:_MSG)?)?)\b")
# The gate pattern that keeps debug checks on in debug builds and off in
# release builds; its disappearance from assert.hpp is itself a finding.
NDEBUG_GATE = "#if !defined(REQSCHED_DEBUG_CHECKS) && !defined(NDEBUG)"

ALLOW_RE = re.compile(r"//\s*reqsched-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
SYSTEM_INCLUDE_RE = re.compile(r"^\s*#\s*include\s+<([^>]+)>")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
RAW_ASSERT_RE = re.compile(r"(?<![_A-Za-z0-9])assert\s*\(")
CONTRACT_STMT_RE = re.compile(r"^REQSCHED_[A-Z_]+\s*\(")
LOOP_RE = re.compile(r"^\s*(?:for|while)\s*\(")

# The streaming layer's O(1)-memory contract: these files run (or feed) the
# engine round loop for unbounded horizons, so any member container they grow
# must also be shrunk within the same file.
STREAM_ACCUM_FILES = {
    "src/engine/streaming.cpp",
    "src/engine/streaming.hpp",
    "src/engine/stream_stats.cpp",
    "src/engine/stream_stats.hpp",
}
# Growth of a member container: `member_.push_back(...)` or
# `member_[i].emplace_back(...)` — the trailing underscore keeps locals and
# parameters out of the rule.
STREAM_GROWTH_RE = re.compile(
    r"\b([A-Za-z][A-Za-z0-9_]*_)\s*(?:\[[^\]]*\])?\s*\.\s*"
    r"(?:push_back|emplace_back)\s*\(")

# --- thread-guards ---------------------------------------------------------
# The annotated-wrapper owner: the only src/ file that may hold a raw
# std::mutex member or name the raw std:: locking vocabulary (it is the
# wrapper the rest of src/ must go through).
THREAD_PRIMITIVE_OWNER = "src/util/mutex.hpp"
# A mutex member declaration: `std::mutex name_;` or the annotated wrapper
# `Mutex name_;`, optionally `mutable`. Matching declarations only (the name
# is followed by `;`, `{...};`, or `= ...;`) keeps lock *uses* out.
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:std\s*::\s*mutex|Mutex)\s+"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*(?:;|\{|=)")
# Raw scoped-locking vocabulary the thread-safety analysis cannot see
# through; src/ code uses reqsched::MutexLock instead.
RAW_LOCK_RE = re.compile(
    r"\bstd\s*::\s*(lock_guard|unique_lock|scoped_lock)\b")
# A GUARDED_BY annotation referencing mutex `m` somewhere in the same file
# satisfies the "this mutex guards something" requirement.
GUARDED_BY_RE = re.compile(
    r"\bREQSCHED_(?:PT_)?GUARDED_BY\s*\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)")

SOURCE_DIRS = ("src", "tools", "bench", "tests", "examples")
EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure, so structural regexes never match inside them."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append('"' if c == '"' else " ")
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append("'" if c == "'" else " ")
        i += 1
    return "".join(out)


def allowed_rules(line: str) -> set:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


class GuardTracker:
    """Tracks whether the current preprocessor region is covered by an
    `#ifdef REQSCHED_DEBUG_CHECKS` / `REQSCHED_AUDIT` style guard."""

    PP_IF = re.compile(r"^\s*#\s*(if|ifdef|ifndef)\b(.*)")
    PP_ELSE = re.compile(r"^\s*#\s*(else|elif)\b")
    PP_ENDIF = re.compile(r"^\s*#\s*endif\b")
    GUARD_TOKENS = ("REQSCHED_DEBUG_CHECKS", "REQSCHED_AUDIT")

    def __init__(self):
        self.stack = []  # one bool per open conditional: branch is guarded

    def feed(self, line: str) -> None:
        m = self.PP_IF.match(line)
        if m:
            kind, cond = m.group(1), m.group(2)
            guarded = any(tok in cond for tok in self.GUARD_TOKENS)
            # `#ifndef GUARD` opens the *unguarded* branch first.
            if kind == "ifndef":
                guarded = False
            self.stack.append(guarded)
            return
        if self.PP_ELSE.match(line):
            if self.stack:
                # The else/elif branch of a guard conditional is not the
                # guarded region (and vice versa for #ifndef, which we treat
                # conservatively: only exact positive guards count).
                self.stack[-1] = False
            return
        if self.PP_ENDIF.match(line):
            if self.stack:
                self.stack.pop()

    def guarded(self) -> bool:
        return any(self.stack)


def split_statements(body: str):
    """Splits a brace-free code fragment into top-level statements."""
    stmts, depth, cur = [], 0, []
    for c in body:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == ";" and depth == 0:
            stmts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        stmts.append(tail)
    return [s for s in stmts if s]


# ---------------------------------------------------------------------------
# Per-file checks
# ---------------------------------------------------------------------------

def rel_layer(relpath: str):
    parts = relpath.split(os.sep)
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in LAYER_ALLOWED:
        return parts[1]
    return None


def check_file(root: str, relpath: str, findings: list) -> None:
    path = os.path.join(root, relpath)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        findings.append(Finding(relpath, 0, "io", f"cannot read file: {e}"))
        return

    raw_lines = raw.splitlines()
    code = strip_comments(raw)
    code_lines = code.splitlines()
    is_header = relpath.endswith((".hpp", ".h"))
    in_src = relpath.startswith("src" + os.sep)
    layer = rel_layer(relpath)
    norm = relpath.replace(os.sep, "/")

    def report(line_no: int, rule: str, message: str) -> None:
        line_txt = raw_lines[line_no - 1] if 0 < line_no <= len(raw_lines) else ""
        if rule in allowed_rules(line_txt):
            return
        findings.append(Finding(norm, line_no, rule, message))

    # --- pragma-once -------------------------------------------------------
    if is_header:
        ok = False
        for i, line in enumerate(code_lines):
            s = line.strip()
            if not s:
                continue
            ok = re.match(r"#\s*pragma\s+once\b", s) is not None
            break
        if not ok:
            report(1, "pragma-once",
                   "header must start with #pragma once before any code")

    # Mutex names referenced by a (PT_)GUARDED_BY anywhere in this file —
    # the "guards at least one thing" evidence for thread-guards.
    guarded_mutexes = set(GUARDED_BY_RE.findall(code)) if in_src else set()

    guard = GuardTracker()
    for i, line in enumerate(code_lines):
        n = i + 1

        # --- layering ------------------------------------------------------
        # The include path is a string literal, which strip_comments blanks;
        # detect the directive on the stripped line (so commented-out
        # includes never match) and read the path from the raw line.
        m = None
        if re.match(r'^\s*#\s*include\s+"', line) and n <= len(raw_lines):
            m = INCLUDE_RE.match(raw_lines[n - 1])
        if m and layer is not None:
            target = m.group(1).split("/")[0]
            if target in LAYER_ALLOWED and target != layer and \
                    target not in LAYER_ALLOWED[layer]:
                report(n, "layering",
                       f'src/{layer} must not include "{m.group(1)}" '
                       f"(layer {target} is not visible from {layer})")

        # --- header-iostream ----------------------------------------------
        sm = SYSTEM_INCLUDE_RE.match(line)
        if sm and sm.group(1) == "iostream" and is_header and in_src:
            report(n, "header-iostream",
                   "library headers must not include <iostream>")

        # --- header-using-ns ----------------------------------------------
        if is_header and USING_NAMESPACE_RE.match(line):
            report(n, "header-using-ns",
                   "headers must not contain `using namespace`")

        # --- debug-macro-def ----------------------------------------------
        gm = GATED_MACROS.match(line.strip())
        if gm and norm != GATE_OWNER:
            report(n, "debug-macro-def",
                   f"only {GATE_OWNER} may define/undef {gm.group(1)}")

        # --- no-raw-assert ------------------------------------------------
        if in_src and RAW_ASSERT_RE.search(line) and "static_assert" not in line:
            report(n, "no-raw-assert",
                   "use the REQSCHED_* contract macros instead of assert()")

        # --- capacity-internals -------------------------------------------
        if in_src:
            cm = CAPACITY_MASK_RE.search(line)
            if cm and norm not in CAPACITY_MASK_OWNERS:
                report(n, "capacity-internals",
                       f"raw capacity state `{cm.group(1)}` is owned by "
                       "delta_window/slot_graph; probe through their "
                       "public API")
            elif norm not in CAPACITY_VECTOR_OWNERS and \
                    CAPACITY_VECTOR_RE.search(line):
                report(n, "capacity-internals",
                       "read per-resource capacities through "
                       "ProblemConfig::capacity_of()/max_capacity(), not "
                       "the raw `capacities` vector")

        # --- snapshot-layer -----------------------------------------------
        if in_src and not norm.startswith(SNAPSHOT_LAYER_DIR):
            sn = SNAPSHOT_TYPES_RE.search(line)
            if sn and line.strip() != SNAPSHOT_FRIEND_GRANT:
                report(n, "snapshot-layer",
                       f"`{sn.group(1)}` belongs to src/snapshot; outside it "
                       "only the exact `friend struct SnapshotAccess;` "
                       "grant may appear")

        # --- thread-guards ------------------------------------------------
        if in_src and norm != THREAD_PRIMITIVE_OWNER:
            lm = RAW_LOCK_RE.search(line)
            if lm:
                report(n, "thread-guards",
                       f"raw std::{lm.group(1)} is invisible to the "
                       "thread-safety analysis; hold locks through "
                       "reqsched::MutexLock (util/mutex.hpp)")
            mm = MUTEX_MEMBER_RE.match(line)
            if mm and mm.group(1) not in guarded_mutexes:
                report(n, "thread-guards",
                       f"mutex `{mm.group(1)}` is referenced by no "
                       "REQSCHED_GUARDED_BY/REQSCHED_PT_GUARDED_BY in this "
                       "file — annotate the state it guards so clang's "
                       "-Wthread-safety can check it")

        guard.feed(line)

    # --- the NDEBUG gate itself -------------------------------------------
    if norm == GATE_OWNER and NDEBUG_GATE not in raw:
        report(1, "debug-macro-def",
               f"the `{NDEBUG_GATE}` gate must stay intact in {GATE_OWNER}")

    # --- hot-loop-guard ----------------------------------------------------
    if norm in HOT_FILES:
        check_hot_loops(norm, code_lines, raw_lines, findings)

    # --- stream-accumulation ----------------------------------------------
    if norm in STREAM_ACCUM_FILES:
        check_stream_accumulation(norm, code, code_lines, raw_lines, findings)


def check_hot_loops(norm, code_lines, raw_lines, findings) -> None:
    guard = GuardTracker()
    i = 0
    n_lines = len(code_lines)
    while i < n_lines:
        line = code_lines[i]
        guard.feed(line)
        if not LOOP_RE.match(line):
            i += 1
            continue
        loop_line = i + 1
        loop_guarded = guard.guarded()
        # Find the loop header's closing paren, then the body.
        text = "\n".join(code_lines[i:])
        open_paren = text.find("(")
        depth, j = 0, open_paren
        while j < len(text):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body_start = j + 1
        # Skip whitespace to the body's first token.
        while body_start < len(text) and text[body_start] in " \t\n":
            body_start += 1
        if body_start >= len(text):
            i += 1
            continue
        if text[body_start] == "{":
            depth, k = 0, body_start
            while k < len(text):
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            body = text[body_start + 1:k]
        else:
            semi = text.find(";", body_start)
            body = text[body_start:semi + 1] if semi >= 0 else ""
        stmts = split_statements(body)
        if stmts and all(CONTRACT_STMT_RE.match(s) for s in stmts) and \
                not loop_guarded:
            line_txt = raw_lines[loop_line - 1] if loop_line <= len(raw_lines) else ""
            if "hot-loop-guard" not in allowed_rules(line_txt):
                findings.append(Finding(
                    norm, loop_line, "hot-loop-guard",
                    "validation-only loop in a hot file must be inside an "
                    "#ifdef REQSCHED_DEBUG_CHECKS / REQSCHED_AUDIT region"))
        # Continue scanning *inside* the loop too (nested loops), so just
        # advance one line.
        i += 1


def member_has_shrink(code: str, member: str) -> bool:
    """True if `member` is shrunk or rebound anywhere in the (stripped)
    file: clear/erase/resize/pop_back/assign/shrink_to_fit/swap member
    calls, std::swap(member, ...), or plain reassignment."""
    esc = re.escape(member)
    shrink = re.compile(
        r"\b" + esc + r"\s*(?:\[[^\]]*\])?\s*\.\s*"
        r"(?:clear|erase|resize|pop_back|assign|shrink_to_fit|swap)\s*\(|"
        r"std\s*::\s*swap\s*\(\s*" + esc + r"\b|"
        r"\b" + esc + r"\s*=(?![=])")
    return shrink.search(code) is not None


def check_stream_accumulation(norm, code, code_lines, raw_lines,
                              findings) -> None:
    """Whole-file pass: every member container grown in a streaming-layer
    file must have a shrink site in the same file, else it is unbounded
    whole-trace accumulation in (or reachable from) the round loop."""
    for i, line in enumerate(code_lines):
        for m in STREAM_GROWTH_RE.finditer(line):
            member = m.group(1)
            if member_has_shrink(code, member):
                continue
            n = i + 1
            line_txt = raw_lines[n - 1] if n <= len(raw_lines) else ""
            if "stream-accumulation" in allowed_rules(line_txt):
                continue
            findings.append(Finding(
                norm, n, "stream-accumulation",
                f"member container `{member}` grows in the streaming layer "
                "but is never shrunk in this file — unbounded whole-trace "
                "accumulation is banned in the engine round loop"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(root: str, paths):
    rels = []
    if paths:
        for p in paths:
            ap = os.path.abspath(p)
            rels.append(os.path.relpath(ap, root))
        return rels
    for top in SOURCE_DIRS:
        top_abs = os.path.join(root, top)
        if not os.path.isdir(top_abs):
            continue
        for dirpath, dirnames, filenames in os.walk(top_abs):
            dirnames[:] = [d for d in dirnames
                           if d not in {"fixtures", "__pycache__"}]
            for fn in sorted(filenames):
                if fn.endswith(EXTENSIONS):
                    rels.append(os.path.relpath(os.path.join(dirpath, fn),
                                                root))
    return sorted(rels)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="reqsched_lint",
        description="repo-specific layering/contract linter")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="finding output format: human-readable text "
                             "(default) or a JSON array of {rule, file, "
                             "line, message} objects")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: all of "
                             "src/ tools/ bench/ tests/ examples/)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"reqsched_lint: no such root: {root}", file=sys.stderr)
        return 2

    findings = []
    files = collect_files(root, args.paths)
    if not files:
        print("reqsched_lint: no files to lint", file=sys.stderr)
        return 2
    for rel in files:
        check_file(root, rel, findings)

    if args.format == "json":
        # Machine-readable mode: stdout carries exactly one JSON document
        # (empty array when clean); the human summary moves to stderr.
        print(json.dumps([{"rule": f.rule, "file": f.path, "line": f.line,
                           "message": f.message} for f in findings],
                         indent=2))
        if findings:
            print(f"reqsched_lint: {len(findings)} finding(s) in "
                  f"{len(files)} file(s)", file=sys.stderr)
            return 1
        print(f"reqsched_lint: {len(files)} file(s) clean", file=sys.stderr)
        return 0

    for f in findings:
        print(f)
    if findings:
        print(f"reqsched_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"reqsched_lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
